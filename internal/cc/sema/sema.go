// Package sema resolves names, checks types, and annotates the AST for
// IL generation. It also performs the address-taken analysis the paper
// attributes to the front end (§4: "only tags that have had their
// address taken are placed in the tag sets of pointer-based memory
// operations. The front end identifies these tags.").
package sema

import (
	"fmt"

	"regpromo/internal/cc/ast"
	"regpromo/internal/cc/token"
	"regpromo/internal/cc/types"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Program is a checked translation unit ready for IL generation.
type Program struct {
	File *ast.File

	// Globals are the program's global variables in declaration
	// order.
	Globals []*ast.VarDecl

	// Funcs are the defined functions in declaration order.
	Funcs []*ast.FuncDecl

	// Strings is the string-literal pool; ast.StringLit.Index
	// refers into it.
	Strings []string

	// FuncSyms maps function names to symbols (including builtins).
	FuncSyms map[string]*ast.Symbol

	// AddressedFuncs lists functions whose address was taken.
	AddressedFuncs []string
}

// Builtins are the runtime intrinsics every program may call without
// declaring. They model the tiny libc the benchmark programs need.
var Builtins = map[string]*types.Type{
	"print_int":    types.FuncOf(types.VoidType, []*types.Type{types.LongType}, false),
	"print_char":   types.FuncOf(types.VoidType, []*types.Type{types.IntType}, false),
	"print_double": types.FuncOf(types.VoidType, []*types.Type{types.DoubleType}, false),
	"print_str":    types.FuncOf(types.VoidType, []*types.Type{types.PointerTo(types.CharType)}, false),
	"malloc":       types.FuncOf(types.PointerTo(types.VoidType), []*types.Type{types.LongType}, false),
	"free":         types.FuncOf(types.VoidType, []*types.Type{types.PointerTo(types.VoidType)}, false),
}

type checker struct {
	prog *Program

	scopes []map[string]*ast.Symbol
	fn     *ast.FuncDecl
	// loopDepth > 0 inside a loop (for break/continue checking).
	loopDepth int
	// uniq numbers local symbols within the current function.
	uniq int
	// strIndex dedupes string literals.
	strIndex map[string]int
	// called records call sites of named functions, for the
	// whole-program completeness check.
	called map[string]token.Pos
}

// Check type-checks the file and returns the annotated program.
func Check(file *ast.File) (*Program, error) {
	c := &checker{
		prog: &Program{
			File:     file,
			FuncSyms: make(map[string]*ast.Symbol),
		},
		strIndex: make(map[string]int),
		called:   make(map[string]token.Pos),
	}
	c.push()
	defer c.pop()

	// Builtins first, so programs may shadow none of them.
	for name, sig := range Builtins {
		sym := &ast.Symbol{Kind: ast.SymFunc, Name: name, Type: sig}
		c.prog.FuncSyms[name] = sym
		c.scopes[0][name] = sym
	}

	// Declaration pass in source order: enums, struct layout checks,
	// globals, function signatures. Bodies are checked afterwards so
	// forward calls resolve.
	for _, d := range file.Decls {
		switch n := d.(type) {
		case *ast.EnumDecl:
			for i, name := range n.Names {
				sym := &ast.Symbol{Kind: ast.SymEnumConst, Name: name, Type: types.IntType, EnumValue: n.Vals[i]}
				if err := c.declare(n.Pos(), name, sym); err != nil {
					return nil, err
				}
			}
		case *ast.StructDecl:
			// Struct field types referencing undefined structs are
			// caught lazily at use; verify no zero-size fields here.
			for _, f := range n.Type.Fields {
				if f.Type.Kind == types.Struct && len(f.Type.Fields) == 0 {
					return nil, &Error{Pos: n.Pos(), Msg: fmt.Sprintf("field %s has incomplete struct type %s", f.Name, f.Type)}
				}
			}
		case *ast.VarDecl:
			if err := c.declareGlobal(n); err != nil {
				return nil, err
			}
		case *ast.FuncDecl:
			if err := c.declareFunc(n); err != nil {
				return nil, err
			}
		}
	}

	// Check global initializers (constants only).
	for _, g := range c.prog.Globals {
		if err := c.checkGlobalInit(g); err != nil {
			return nil, err
		}
	}

	// Check function bodies.
	defined := map[string]bool{}
	for _, fd := range file.Funcs {
		if fd.Body == nil {
			continue
		}
		defined[fd.Name] = true
		if err := c.checkFunc(fd); err != nil {
			return nil, err
		}
	}

	// Whole-program completeness: the compiler analyzes the entire
	// program at once (§4), so every called or addressed function
	// must be defined here or be a runtime intrinsic.
	for name, pos := range c.called {
		if _, builtin := Builtins[name]; builtin || defined[name] {
			continue
		}
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("call to undefined function %s (whole-program compilation requires a definition)", name)}
	}
	for _, name := range c.prog.AddressedFuncs {
		if _, builtin := Builtins[name]; builtin || defined[name] {
			continue
		}
		return nil, &Error{Msg: fmt.Sprintf("address taken of undefined function %s", name)}
	}
	return c.prog, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*ast.Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos token.Pos, name string, sym *ast.Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return &Error{Pos: pos, Msg: fmt.Sprintf("%s redeclared in this scope", name)}
	}
	top[name] = sym
	return nil
}

func (c *checker) lookup(name string) *ast.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if sym, ok := c.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) declareGlobal(n *ast.VarDecl) error {
	if n.Type.Kind == types.Void {
		return c.errorf(n.Pos(), "variable %s has void type", n.Name)
	}
	if n.Type.Kind == types.Struct && len(n.Type.Fields) == 0 {
		return c.errorf(n.Pos(), "variable %s has incomplete struct type", n.Name)
	}
	if n.Type.Kind == types.Array && n.Type.ArrayLen == 0 && len(n.InitList) > 0 {
		// Size unsized arrays from their initializer.
		n.Type = types.ArrayOf(n.Type.Elem, len(n.InitList))
	}
	sym := &ast.Symbol{Kind: ast.SymGlobal, Name: n.Name, Type: n.Type}
	n.Sym = sym
	c.prog.Globals = append(c.prog.Globals, n)
	return c.declare(n.Pos(), n.Name, sym)
}

func (c *checker) declareFunc(fd *ast.FuncDecl) error {
	sig := types.FuncOf(fd.Result, paramTypes(fd), false)
	if prev, ok := c.prog.FuncSyms[fd.Name]; ok {
		if !types.Equal(prev.Type, sig) {
			return c.errorf(fd.Pos(), "conflicting declarations of %s: %s vs %s", fd.Name, prev.Type, sig)
		}
		fd.Sym = prev
		if fd.Body != nil {
			c.prog.Funcs = append(c.prog.Funcs, fd)
		}
		return nil
	}
	if fd.Result.Kind == types.Struct {
		return c.errorf(fd.Pos(), "struct return values are not supported")
	}
	for _, p := range fd.Params {
		if p.Type.Kind == types.Struct {
			return c.errorf(p.Pos(), "struct parameters are not supported (pass a pointer)")
		}
	}
	sym := &ast.Symbol{Kind: ast.SymFunc, Name: fd.Name, Type: sig}
	fd.Sym = sym
	c.prog.FuncSyms[fd.Name] = sym
	if err := c.declare(fd.Pos(), fd.Name, sym); err != nil {
		return err
	}
	if fd.Body != nil {
		c.prog.Funcs = append(c.prog.Funcs, fd)
	}
	return nil
}

func paramTypes(fd *ast.FuncDecl) []*types.Type {
	out := make([]*types.Type, len(fd.Params))
	for i, p := range fd.Params {
		out[i] = p.Type
	}
	return out
}

func (c *checker) checkGlobalInit(g *ast.VarDecl) error {
	if g.Init != nil {
		if err := c.checkExpr(g.Init); err != nil {
			return err
		}
		if !isConstExpr(g.Init) {
			return c.errorf(g.Init.Pos(), "global initializer must be constant")
		}
	}
	for _, e := range g.InitList {
		if err := c.checkExpr(e); err != nil {
			return err
		}
		if !isConstExpr(e) {
			return c.errorf(e.Pos(), "global initializer element must be constant")
		}
	}
	return nil
}

// isConstExpr reports whether e is a compile-time constant the
// initializer evaluator handles.
func isConstExpr(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit:
		return true
	case *ast.Ident:
		if n.Sym == nil {
			return false
		}
		// Enum constants fold; a global array name is an address
		// constant.
		return n.Sym.Kind == ast.SymEnumConst ||
			(n.Sym.Kind == ast.SymGlobal && n.Sym.Type.Kind == types.Array)
	case *ast.Unary:
		if n.Op == token.And {
			// &global and &global_array[const] are address constants.
			switch x := n.X.(type) {
			case *ast.Ident:
				return x.Sym != nil && x.Sym.Kind == ast.SymGlobal
			case *ast.Index:
				id, ok := x.X.(*ast.Ident)
				if !ok || id.Sym == nil || id.Sym.Kind != ast.SymGlobal ||
					id.Sym.Type.Kind != types.Array {
					return false
				}
				_, lit := x.I.(*ast.IntLit)
				return lit
			}
			return false
		}
		return (n.Op == token.Minus || n.Op == token.Tilde || n.Op == token.Not) && isConstExpr(n.X)
	case *ast.Binary:
		return isConstExpr(n.X) && isConstExpr(n.Y)
	case *ast.SizeofExpr:
		return true
	case *ast.Cast:
		return isConstExpr(n.X)
	case *ast.ListExpr:
		for _, el := range n.Elems {
			if !isConstExpr(el) {
				return false
			}
		}
		return true
	}
	return false
}

func (c *checker) checkFunc(fd *ast.FuncDecl) error {
	c.fn = fd
	c.uniq = 0
	c.push()
	defer c.pop()
	for _, p := range fd.Params {
		if p.Name == "" {
			return c.errorf(p.Pos(), "unnamed parameter in definition of %s", fd.Name)
		}
		sym := &ast.Symbol{Kind: ast.SymParam, Name: p.Name, Type: p.Type, Func: fd, Uniq: c.uniq}
		c.uniq++
		p.Sym = sym
		if err := c.declare(p.Pos(), p.Name, sym); err != nil {
			return err
		}
	}
	return c.checkBlock(fd.Body)
}

func (c *checker) checkBlock(b *ast.Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt) error {
	switch n := s.(type) {
	case *ast.Block:
		return c.checkBlock(n)
	case *ast.Empty:
		return nil
	case *ast.ExprStmt:
		return c.checkExpr(n.X)
	case *ast.DeclStmt:
		for _, d := range n.Decls {
			if err := c.checkLocalDecl(d); err != nil {
				return err
			}
		}
		return nil
	case *ast.If:
		if err := c.checkCond(n.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.checkStmt(n.Else)
		}
		return nil
	case *ast.While:
		if err := c.checkCond(n.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(n.Body)
	case *ast.DoWhile:
		c.loopDepth++
		err := c.checkStmt(n.Body)
		c.loopDepth--
		if err != nil {
			return err
		}
		return c.checkCond(n.Cond)
	case *ast.For:
		c.push()
		defer c.pop()
		if n.Init != nil {
			if err := c.checkStmt(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := c.checkCond(n.Cond); err != nil {
				return err
			}
		}
		if n.Post != nil {
			if err := c.checkExpr(n.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(n.Body)
	case *ast.Return:
		want := c.fn.Result
		if n.Value == nil {
			if want.Kind != types.Void {
				return c.errorf(n.Pos(), "missing return value in %s", c.fn.Name)
			}
			return nil
		}
		if want.Kind == types.Void {
			return c.errorf(n.Pos(), "return with value in void function %s", c.fn.Name)
		}
		if err := c.checkExpr(n.Value); err != nil {
			return err
		}
		if !assignable(want, rval(n.Value.Type())) {
			return c.errorf(n.Pos(), "cannot return %s as %s", n.Value.Type(), want)
		}
		return nil
	case *ast.Break:
		if c.loopDepth == 0 {
			return c.errorf(n.Pos(), "break outside loop")
		}
		return nil
	case *ast.Continue:
		if c.loopDepth == 0 {
			return c.errorf(n.Pos(), "continue outside loop")
		}
		return nil
	}
	return c.errorf(s.Pos(), "unhandled statement %T", s)
}

func (c *checker) checkLocalDecl(d *ast.VarDecl) error {
	if d.Type.Kind == types.Void {
		return c.errorf(d.Pos(), "variable %s has void type", d.Name)
	}
	if d.Type.Kind == types.Struct && len(d.Type.Fields) == 0 {
		return c.errorf(d.Pos(), "variable %s has incomplete struct type", d.Name)
	}
	if d.Type.Kind == types.Array && d.Type.ArrayLen == 0 && len(d.InitList) > 0 {
		d.Type = types.ArrayOf(d.Type.Elem, len(d.InitList))
	}
	sym := &ast.Symbol{Kind: ast.SymLocal, Name: d.Name, Type: d.Type, Func: c.fn, Uniq: c.uniq}
	c.uniq++
	d.Sym = sym
	c.fn.Locals = append(c.fn.Locals, d)
	if err := c.declare(d.Pos(), d.Name, sym); err != nil {
		return err
	}
	if d.Init != nil {
		if err := c.checkExpr(d.Init); err != nil {
			return err
		}
		if !assignable(d.Type, rval(d.Init.Type())) {
			return c.errorf(d.Init.Pos(), "cannot initialize %s (%s) with %s", d.Name, d.Type, d.Init.Type())
		}
	}
	for _, e := range d.InitList {
		if err := c.checkExpr(e); err != nil {
			return err
		}
	}
	if len(d.InitList) > 0 && d.Type.Kind != types.Array && d.Type.Kind != types.Struct {
		return c.errorf(d.Pos(), "brace initializer on scalar %s", d.Name)
	}
	return nil
}

func (c *checker) checkCond(e ast.Expr) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if !rval(e.Type()).IsScalar() {
		return c.errorf(e.Pos(), "condition has non-scalar type %s", e.Type())
	}
	return nil
}
