// Package callgraph builds the program call graph, finds its strongly
// connected components with Tarjan's algorithm, and orders the SCCs
// reverse-topologically — the order the MOD/REF analysis processes
// them in (§4: "Processing the SCCs in reverse topological order
// ensures that the tag set of any called function not in the current
// SCC has already been calculated").
package callgraph

import (
	"sort"

	"regpromo/internal/ir"
)

// FuncID is a dense index interning one defined function, assigned in
// module function order. Analyses use it to key per-function tables as
// flat slices instead of name-keyed maps.
type FuncID int32

// FuncInvalid is returned for names that do not intern (undefined
// functions, intrinsics).
const FuncInvalid FuncID = -1

// Graph is a call graph over the module's defined functions.
type Graph struct {
	mod *ir.Module

	// Callees maps a function to the set of functions it may call
	// directly or through a function pointer. Calls to intrinsics
	// and undefined functions are not edges.
	Callees map[string][]string

	// HasIndirect marks functions containing indirect calls.
	HasIndirect map[string]bool

	// SCCs lists components in reverse topological order (callees
	// before callers). Each component lists its member function
	// names sorted.
	SCCs [][]string

	// sccOf maps a function name to its SCC index.
	sccOf map[string]int

	// ids interns defined function names in module function order;
	// names is the inverse table.
	ids   map[string]FuncID
	names []string

	// CalleeIDs mirrors Callees with interned ids: CalleeIDs[f] lists
	// the ids of the functions f may call, in Callees order. Analyses
	// iterate these instead of resolving names on hot paths.
	CalleeIDs [][]FuncID

	// SCCMemberIDs mirrors SCCs with interned ids, one slice per
	// component in the same (reverse topological) order.
	SCCMemberIDs [][]FuncID

	// sccOfID maps a FuncID to its SCC index (dense mirror of sccOf).
	sccOfID []int

	// sccSuccs lists, per SCC, the distinct callee components in
	// first-reference order — the condensation's edge list.
	sccSuccs [][]int
}

// ID returns the dense id interning name, or FuncInvalid when name is
// not a defined function.
func (g *Graph) ID(name string) FuncID {
	if id, ok := g.ids[name]; ok {
		return id
	}
	return FuncInvalid
}

// Name returns the function name interned as id.
func (g *Graph) Name(id FuncID) string { return g.names[id] }

// NumFuncs returns the number of interned (defined) functions; valid
// FuncIDs are [0, NumFuncs).
func (g *Graph) NumFuncs() int { return len(g.names) }

// Build constructs the call graph. Indirect calls conservatively
// target every addressed function (§4).
func Build(mod *ir.Module) *Graph {
	g := &Graph{
		mod:         mod,
		Callees:     make(map[string][]string),
		HasIndirect: make(map[string]bool),
		sccOf:       make(map[string]int),
		ids:         make(map[string]FuncID, len(mod.FuncOrder)),
	}
	for _, name := range mod.FuncOrder {
		g.ids[name] = FuncID(len(g.names))
		g.names = append(g.names, name)
	}
	for _, fn := range mod.FuncsInOrder() {
		seen := map[string]bool{}
		var callees []string
		addCallee := func(name string) {
			if _, defined := mod.Funcs[name]; !defined {
				return
			}
			if !seen[name] {
				seen[name] = true
				callees = append(callees, name)
			}
		}
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpJsr {
					continue
				}
				if in.Callee != "" {
					addCallee(in.Callee)
					continue
				}
				g.HasIndirect[fn.Name] = true
				// Points-to analysis may have pinned the possible
				// targets; otherwise any addressed function.
				targets := in.Targets
				if targets == nil {
					targets = mod.AddressedFuncs
				}
				for _, t := range targets {
					addCallee(t)
				}
			}
		}
		sort.Strings(callees)
		g.Callees[fn.Name] = callees
	}
	g.computeSCCs()
	g.buildDense()
	return g
}

// buildDense fills the id-indexed mirrors of the name-keyed tables
// once the SCCs are known.
func (g *Graph) buildDense() {
	n := len(g.names)
	g.CalleeIDs = make([][]FuncID, n)
	g.sccOfID = make([]int, n)
	for id, name := range g.names {
		g.sccOfID[id] = g.sccOf[name]
		callees := g.Callees[name]
		ids := make([]FuncID, len(callees))
		for i, c := range callees {
			ids[i] = g.ids[c]
		}
		g.CalleeIDs[id] = ids
	}
	g.SCCMemberIDs = make([][]FuncID, len(g.SCCs))
	g.sccSuccs = make([][]int, len(g.SCCs))
	for i, comp := range g.SCCs {
		members := make([]FuncID, len(comp))
		for j, name := range comp {
			members[j] = g.ids[name]
		}
		g.SCCMemberIDs[i] = members
		seen := map[int]bool{i: true}
		for _, m := range members {
			for _, c := range g.CalleeIDs[m] {
				if j := g.sccOfID[c]; !seen[j] {
					seen[j] = true
					g.sccSuccs[i] = append(g.sccSuccs[i], j)
				}
			}
		}
	}
}

// SCCSuccs returns the condensation successors of component i: the
// distinct components its members call into, in first-reference
// order. Successor indices are always smaller than i (reverse
// topological numbering). The returned slice is owned by the graph.
func (g *Graph) SCCSuccs(i int) []int { return g.sccSuccs[i] }

// SCCOf returns the index (into SCCs) of fn's component.
func (g *Graph) SCCOf(fn string) int { return g.sccOf[fn] }

// SCCOfID returns the index (into SCCs) of id's component.
func (g *Graph) SCCOfID(id FuncID) int { return g.sccOfID[id] }

// DirtySCCs returns, in reverse topological order (the SCCs slice
// order), the indices of every component whose analysis facts may
// change when the bodies of the named functions change. That is the
// changed functions' own components plus both closure directions over
// the condensation: every component that can call into a changed one
// (MOD/REF summaries flow callees→callers, so all ancestors up to the
// root are dirty) and every component a changed one can call into
// (visibility sets flow callers→callees, so an edit that adds or
// removes a call edge can widen or shrink a descendant's visible
// tags). Components unreachable from and by the changed set — the
// bulk of a large module — are clean and their cached summaries can
// be reused as-is. Unknown names are ignored.
func (g *Graph) DirtySCCs(changed []string) []int {
	n := len(g.SCCs)
	up := make([]bool, n)   // can reach a changed component
	down := make([]bool, n) // reachable from a changed component
	for _, name := range changed {
		if idx, ok := g.sccOf[name]; ok {
			up[idx] = true
			down[idx] = true
		}
	}
	// Tarjan emits callees first, so every successor (callee) of
	// component i has a smaller index. Ascending order settles "can
	// reach changed" (via callees); descending order settles
	// "reachable from changed".
	for i := 0; i < n; i++ {
		if up[i] {
			continue
		}
		for _, j := range g.sccSuccs[i] {
			if up[j] {
				up[i] = true
				break
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		if !down[i] {
			continue
		}
		for _, j := range g.sccSuccs[i] {
			down[j] = true
		}
	}
	var dirty []int
	for i := 0; i < n; i++ {
		if up[i] || down[i] {
			dirty = append(dirty, i)
		}
	}
	return dirty
}

// InCycle reports whether fn can (transitively) call itself: its SCC
// has more than one member, or it calls itself directly.
func (g *Graph) InCycle(fn string) bool {
	idx, ok := g.sccOf[fn]
	if !ok {
		return false
	}
	if len(g.SCCs[idx]) > 1 {
		return true
	}
	for _, c := range g.Callees[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// computeSCCs runs Tarjan's algorithm. Tarjan emits components in
// reverse topological order of the condensation (callees first),
// which is exactly the processing order MOD/REF needs.
func (g *Graph) computeSCCs() {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Callees[v] {
			if _, visited := index[w]; !visited {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			idx := len(g.SCCs)
			for _, w := range comp {
				g.sccOf[w] = idx
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}

	for _, name := range g.mod.FuncOrder {
		if _, visited := index[name]; !visited {
			strongConnect(name)
		}
	}
}
