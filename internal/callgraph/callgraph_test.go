package callgraph

import (
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

func build(t *testing.T, src string) (*ir.Module, *Graph) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return m, Build(m)
}

func TestDirectEdges(t *testing.T) {
	_, g := build(t, `
void c(void) { }
void b(void) { c(); }
void a(void) { b(); c(); }
`)
	if len(g.Callees["a"]) != 2 {
		t.Fatalf("a calls %v", g.Callees["a"])
	}
	if len(g.Callees["c"]) != 0 {
		t.Fatalf("c calls %v", g.Callees["c"])
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	_, g := build(t, `
void leaf(void) { }
void mid(void) { leaf(); }
void top(void) { mid(); }
`)
	pos := map[string]int{}
	for i, comp := range g.SCCs {
		for _, f := range comp {
			pos[f] = i
		}
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Fatalf("order: %v", g.SCCs)
	}
}

func TestMutualRecursionOneSCC(t *testing.T) {
	_, g := build(t, `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n-1); }
int odd(int n) { if (n == 0) return 0; return even(n-1); }
void driver(void) { even(4); }
`)
	if g.SCCOf("even") != g.SCCOf("odd") {
		t.Fatal("mutual recursion must share an SCC")
	}
	if g.SCCOf("driver") == g.SCCOf("even") {
		t.Fatal("driver is not in the cycle")
	}
	if !g.InCycle("even") || !g.InCycle("odd") || g.InCycle("driver") {
		t.Fatal("InCycle wrong")
	}
}

func TestSelfRecursion(t *testing.T) {
	_, g := build(t, `
int fact(int n) { if (n <= 1) return 1; return n * fact(n-1); }
`)
	if !g.InCycle("fact") {
		t.Fatal("self recursion is a cycle")
	}
	if len(g.SCCs[g.SCCOf("fact")]) != 1 {
		t.Fatal("self loop is a singleton SCC")
	}
}

func TestIndirectCallsTargetAddressedFunctions(t *testing.T) {
	_, g := build(t, `
void fa(void) { }
void fb(void) { }
void fc(void) { }
void run(void (*f)(void)) { f(); }
int main(void) { run(fa); run(fb); return 0; }
`)
	if !g.HasIndirect["run"] {
		t.Fatal("run has an indirect call")
	}
	callees := map[string]bool{}
	for _, c := range g.Callees["run"] {
		callees[c] = true
	}
	if !callees["fa"] || !callees["fb"] {
		t.Fatalf("run should target both addressed functions: %v", g.Callees["run"])
	}
	if callees["fc"] {
		t.Fatal("fc is never addressed")
	}
}

func TestIndirectCallsUsePinnedTargets(t *testing.T) {
	m, _ := build(t, `
void fa(void) { }
void fb(void) { }
void run(void (*f)(void)) { f(); }
int main(void) { run(fa); run(fb); return 0; }
`)
	// Simulate points-to pinning the indirect call to fa only.
	for _, b := range m.Funcs["run"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpJsr && b.Instrs[i].Callee == "" {
				b.Instrs[i].Targets = []string{"fa"}
			}
		}
	}
	g := Build(m)
	for _, c := range g.Callees["run"] {
		if c == "fb" {
			t.Fatal("pinned target set should exclude fb")
		}
	}
}

func TestIntrinsicsAreNotEdges(t *testing.T) {
	_, g := build(t, `
int main(void) { print_int(3); return 0; }
`)
	if len(g.Callees["main"]) != 0 {
		t.Fatalf("intrinsics are not call-graph edges: %v", g.Callees["main"])
	}
}

// dirtyNames maps a DirtySCCs result back to the member-name sets for
// assertion convenience.
func dirtyNames(g *Graph, changed ...string) map[string]bool {
	out := map[string]bool{}
	for _, idx := range g.DirtySCCs(changed) {
		for _, f := range g.SCCs[idx] {
			out[f] = true
		}
	}
	return out
}

// TestDirtySCCsDisjointChains: editing one call chain must leave a
// disjoint chain entirely clean — that cleanliness is the whole point
// of incremental re-analysis.
func TestDirtySCCsDisjointChains(t *testing.T) {
	_, g := build(t, `
void aleaf(void) { }
void atop(void) { aleaf(); }
void bleaf(void) { }
void btop(void) { bleaf(); }
`)
	d := dirtyNames(g, "aleaf")
	if !d["aleaf"] || !d["atop"] {
		t.Fatalf("editing aleaf must dirty its chain: %v", d)
	}
	if d["bleaf"] || d["btop"] {
		t.Fatalf("disjoint chain must stay clean: %v", d)
	}
}

// TestDirtySCCsBothDirections: an edit dirties ancestors (summaries
// flow callees to callers) and descendants (visible sets flow callers
// to callees), but not siblings reachable from neither direction.
func TestDirtySCCsBothDirections(t *testing.T) {
	_, g := build(t, `
void leaf(void) { }
void mid(void) { leaf(); }
void top(void) { mid(); }
void other(void) { }
`)
	d := dirtyNames(g, "mid")
	for _, f := range []string{"leaf", "mid", "top"} {
		if !d[f] {
			t.Fatalf("editing mid must dirty %s: %v", f, d)
		}
	}
	if d["other"] {
		t.Fatalf("unconnected function must stay clean: %v", d)
	}
}

// TestDirtySCCsRecursionCycle: editing one member of a mutual
// recursion dirties the whole component and its callers.
func TestDirtySCCsRecursionCycle(t *testing.T) {
	_, g := build(t, `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n-1); }
int odd(int n) { if (n == 0) return 0; return even(n-1); }
void driver(void) { even(4); }
void bystander(void) { }
`)
	d := dirtyNames(g, "odd")
	if !d["odd"] || !d["even"] || !d["driver"] {
		t.Fatalf("cycle edit must dirty the component and its callers: %v", d)
	}
	if d["bystander"] {
		t.Fatalf("bystander must stay clean: %v", d)
	}
}

// TestDirtySCCsOrderAndUnknowns: the result is ascending SCC indices
// (reverse topological order), and unknown names contribute nothing.
func TestDirtySCCsOrderAndUnknowns(t *testing.T) {
	_, g := build(t, `
void leaf(void) { }
void mid(void) { leaf(); }
void top(void) { mid(); }
`)
	dirty := g.DirtySCCs([]string{"mid", "nosuchfunction"})
	for i := 1; i < len(dirty); i++ {
		if dirty[i-1] >= dirty[i] {
			t.Fatalf("dirty set not in reverse topological order: %v", dirty)
		}
	}
	if got := g.DirtySCCs([]string{"nosuchfunction"}); len(got) != 0 {
		t.Fatalf("unknown names alone must dirty nothing, got %v", got)
	}
	if got := g.DirtySCCs(nil); len(got) != 0 {
		t.Fatalf("empty change set must dirty nothing, got %v", got)
	}
}
