package callgraph

import (
	"testing"

	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/ir"
)

func build(t *testing.T, src string) (*ir.Module, *Graph) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := irgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return m, Build(m)
}

func TestDirectEdges(t *testing.T) {
	_, g := build(t, `
void c(void) { }
void b(void) { c(); }
void a(void) { b(); c(); }
`)
	if len(g.Callees["a"]) != 2 {
		t.Fatalf("a calls %v", g.Callees["a"])
	}
	if len(g.Callees["c"]) != 0 {
		t.Fatalf("c calls %v", g.Callees["c"])
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	_, g := build(t, `
void leaf(void) { }
void mid(void) { leaf(); }
void top(void) { mid(); }
`)
	pos := map[string]int{}
	for i, comp := range g.SCCs {
		for _, f := range comp {
			pos[f] = i
		}
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Fatalf("order: %v", g.SCCs)
	}
}

func TestMutualRecursionOneSCC(t *testing.T) {
	_, g := build(t, `
int odd(int n);
int even(int n) { if (n == 0) return 1; return odd(n-1); }
int odd(int n) { if (n == 0) return 0; return even(n-1); }
void driver(void) { even(4); }
`)
	if g.SCCOf("even") != g.SCCOf("odd") {
		t.Fatal("mutual recursion must share an SCC")
	}
	if g.SCCOf("driver") == g.SCCOf("even") {
		t.Fatal("driver is not in the cycle")
	}
	if !g.InCycle("even") || !g.InCycle("odd") || g.InCycle("driver") {
		t.Fatal("InCycle wrong")
	}
}

func TestSelfRecursion(t *testing.T) {
	_, g := build(t, `
int fact(int n) { if (n <= 1) return 1; return n * fact(n-1); }
`)
	if !g.InCycle("fact") {
		t.Fatal("self recursion is a cycle")
	}
	if len(g.SCCs[g.SCCOf("fact")]) != 1 {
		t.Fatal("self loop is a singleton SCC")
	}
}

func TestIndirectCallsTargetAddressedFunctions(t *testing.T) {
	_, g := build(t, `
void fa(void) { }
void fb(void) { }
void fc(void) { }
void run(void (*f)(void)) { f(); }
int main(void) { run(fa); run(fb); return 0; }
`)
	if !g.HasIndirect["run"] {
		t.Fatal("run has an indirect call")
	}
	callees := map[string]bool{}
	for _, c := range g.Callees["run"] {
		callees[c] = true
	}
	if !callees["fa"] || !callees["fb"] {
		t.Fatalf("run should target both addressed functions: %v", g.Callees["run"])
	}
	if callees["fc"] {
		t.Fatal("fc is never addressed")
	}
}

func TestIndirectCallsUsePinnedTargets(t *testing.T) {
	m, _ := build(t, `
void fa(void) { }
void fb(void) { }
void run(void (*f)(void)) { f(); }
int main(void) { run(fa); run(fb); return 0; }
`)
	// Simulate points-to pinning the indirect call to fa only.
	for _, b := range m.Funcs["run"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpJsr && b.Instrs[i].Callee == "" {
				b.Instrs[i].Targets = []string{"fa"}
			}
		}
	}
	g := Build(m)
	for _, c := range g.Callees["run"] {
		if c == "fb" {
			t.Fatal("pinned target set should exclude fb")
		}
	}
}

func TestIntrinsicsAreNotEdges(t *testing.T) {
	_, g := build(t, `
int main(void) { print_int(3); return 0; }
`)
	if len(g.Callees["main"]) != 0 {
		t.Fatalf("intrinsics are not call-graph edges: %v", g.Callees["main"])
	}
}
