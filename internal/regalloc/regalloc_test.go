package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regpromo/internal/interp"
	"regpromo/internal/ir"
	"regpromo/internal/opt/promote"
	"regpromo/internal/testgen"
	"regpromo/internal/testutil"
)

func alloc(t *testing.T, m *ir.Module, k int) Stats {
	t.Helper()
	st, err := Run(m, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("allocation broke the IL: %v", err)
	}
	return st
}

func TestAllocationPreservesBehaviour(t *testing.T) {
	src := `
int g;
int helper(int a, int b, int c) { return a * b + c; }
int main(void) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 50; i++) {
		acc = (acc + helper(i, i + 1, i + 2)) & 1048575;
		g ^= acc;
	}
	print_int(acc);
	print_int(g);
	return 0;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	for _, k := range []int{32, 8, 6, 4} {
		m := testutil.Compile(t, src)
		alloc(t, m, k)
		testutil.MustBehaveLike(t, m, want)
	}
}

func TestRegisterCountBounded(t *testing.T) {
	m := testutil.Compile(t, `
int main(void) {
	int a; int b; int c; int d; int e;
	a = 1; b = 2; c = 3; d = 4; e = 5;
	return a + b + c + d + e;
}
`)
	alloc(t, m, 8)
	for _, fn := range m.FuncsInOrder() {
		if !fn.Allocated {
			t.Fatalf("%s not marked allocated", fn.Name)
		}
		if fn.NumRegs > 8 {
			t.Fatalf("%s uses %d registers with K=8", fn.Name, fn.NumRegs)
		}
	}
}

func TestCoalescingRemovesPromotionCopies(t *testing.T) {
	// Promotion turns in-loop references into copies; the allocator
	// must eliminate essentially all of them ("It is quite effective
	// at eliminating copies like these", §3.1 footnote).
	src := `
int total;
int main(void) {
	int i;
	for (i = 0; i < 100; i++) total += i;
	print_int(total);
	return 0;
}
`
	m := testutil.Compile(t, src)
	want := testutil.Run(t, testutil.Compile(t, src))
	promote.Run(m, promote.Options{})
	preAlloc, err := interp.Run(m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := alloc(t, m, 32)
	postAlloc := testutil.MustBehaveLike(t, m, want)
	if st.Coalesced == 0 {
		t.Fatal("no copies coalesced")
	}
	if postAlloc.Counts.Copies >= preAlloc.Counts.Copies {
		t.Fatalf("dynamic copies should drop: %d -> %d",
			preAlloc.Counts.Copies, postAlloc.Counts.Copies)
	}
}

func TestSpillingUnderPressure(t *testing.T) {
	// More simultaneously-live values than registers: allocation must
	// spill (inserting real loads/stores) and still compute the right
	// answer.
	src := `
int main(void) {
	int a; int b; int c; int d; int e; int f; int g; int h;
	int i; int j;
	a = 1; b = 2; c = 3; d = 4; e = 5; f = 6; g = 7; h = 8; i = 9; j = 10;
	/* keep all ten live across a computation */
	a = a + j; b = b + i; c = c + h; d = d + g; e = e + f;
	f = f + a; g = g + b; h = h + c; i = i + d; j = j + e;
	return a + b + c + d + e + f + g + h + i + j;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	st := alloc(t, m, 4)
	if st.Spilled == 0 {
		t.Fatal("K=4 must spill")
	}
	got := testutil.MustBehaveLike(t, m, want)
	if got.Counts.Loads == 0 || got.Counts.Stores == 0 {
		t.Fatal("spill code must execute real memory operations")
	}
}

func TestRematerializationAvoidsMemory(t *testing.T) {
	// Constants under pressure re-issue loadI instead of spilling
	// through memory: no spill loads should appear for them.
	src := `
int data[32];
int main(void) {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 32; i++) {
		data[i] = i * 3 + (1 << 6) + 255 + 4095 + 65535;
	}
	for (i = 0; i < 32; i++) acc = (acc + data[i]) & 1048575;
	return acc & 127;
}
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	st := alloc(t, m, 6)
	testutil.MustBehaveLike(t, m, want)
	// With rematerialization available, spill stores should be far
	// fewer than total "spilled" classes would suggest.
	if st.Spilled > 0 && st.SpillStores > st.Spilled*4 {
		t.Fatalf("suspiciously heavy spill traffic: %+v", st)
	}
}

func TestParamsGetDistinctHomes(t *testing.T) {
	src := `
int f(int a, int b, int c) { return a * 100 + b * 10 + c; }
int main(void) { return f(1, 2, 3) & 127; }
`
	want := testutil.Run(t, testutil.Compile(t, src))
	m := testutil.Compile(t, src)
	alloc(t, m, 8)
	f := m.Funcs["f"]
	seen := map[ir.Reg]bool{}
	for _, p := range f.Params {
		if seen[p] {
			t.Fatalf("two parameters share register r%d", p)
		}
		seen[p] = true
	}
	testutil.MustBehaveLike(t, m, want)
}

// TestRandomProgramsSurviveAllocation is the allocator's property
// test: random programs behave identically at every feasible K.
func TestRandomProgramsSurviveAllocation(t *testing.T) {
	count := 25
	if testing.Short() {
		count = 5
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := testgen.Program(rng.Int63())
		want := testutil.Run(t, testutil.Compile(t, src))
		for _, k := range []int{32, 10, 6} {
			m := testutil.Compile(t, src)
			if _, err := Run(m, Options{K: k}); err != nil {
				t.Logf("K=%d: %v", k, err)
				return false
			}
			got, err := interp.Run(m, interp.Options{})
			if err != nil {
				t.Logf("K=%d: %v\n%s", k, err, src)
				return false
			}
			if got.Output != want.Output || got.Exit != want.Exit {
				t.Logf("K=%d diverged\n%s", k, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessComputation(t *testing.T) {
	// Build: entry defines r0, loop uses r0 and defines r1, exit uses
	// r1. r0 must be live around the loop.
	fn := &ir.Func{Name: "t"}
	entry := fn.NewBlock("")
	loop := fn.NewBlock("")
	exit := fn.NewBlock("")
	fn.Entry = entry
	r0 := fn.NewReg()
	r1 := fn.NewReg()
	entry.Instrs = []ir.Instr{
		{Op: ir.OpLoadI, Dst: r0, Imm: 1},
		{Op: ir.OpBr},
	}
	ir.AddEdge(entry, loop)
	loop.Instrs = []ir.Instr{
		{Op: ir.OpAdd, Dst: r1, A: r0, B: r0},
		{Op: ir.OpCBr, A: r1},
	}
	ir.AddEdge(loop, loop)
	ir.AddEdge(loop, exit)
	exit.Instrs = []ir.Instr{{Op: ir.OpRet, A: r1, HasValue: true}}
	fn.HasVarRet = true

	lv := computeLiveness(fn)
	if !lv.liveOut[entry.ID].has(r0) {
		t.Fatal("r0 must be live out of entry")
	}
	if !lv.liveIn[loop.ID].has(r0) {
		t.Fatal("r0 must be live into the loop (used every iteration)")
	}
	if !lv.liveOut[loop.ID].has(r1) {
		t.Fatal("r1 must be live out of the loop (returned)")
	}
	if lv.liveIn[entry.ID].has(r0) {
		t.Fatal("r0 is defined in entry, not live into it")
	}
}
