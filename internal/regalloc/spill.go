package regalloc

import (
	"fmt"

	"regpromo/internal/ir"
)

// insertSpills rewrites the function so that every spilled register
// class lives in a dedicated frame slot: each use loads the slot into
// a fresh temporary, each definition stores a fresh temporary back.
// The inserted sLoad/sStore operations are real memory traffic and
// count exactly like any other load or store — spilling is how
// over-eager promotion loses (§5, water).
func insertSpills(fn *ir.Func, spills []ir.Reg, g *graph, tags ir.TagAlloc) Stats {
	var stats Stats
	find := g.find

	// Spilled representatives, as a set.
	spillSet := make(map[ir.Reg]bool, len(spills))
	for _, r := range spills {
		spillSet[r] = true
	}

	// A spilled class whose only definition is a rematerializable
	// instruction gets no slot: each use re-issues the definition.
	remat := make(map[ir.Reg]ir.Instr, len(spills))
	for _, rep := range spills {
		var def ir.Instr
		nDefs := 0
		ok := false
		for r := ir.Reg(0); int(r) < g.n; r++ {
			if g.find(r) != rep {
				continue
			}
			nDefs += g.defs[r]
			if d, has := g.remat[r]; has {
				def = d
				ok = true
			}
		}
		if ok && nDefs == 1 {
			remat[rep] = def
		}
	}

	// Per spilled (non-remat) class, a frame slot.
	slot := make(map[ir.Reg]ir.TagID, len(spills))
	for _, r := range spills {
		if _, isRemat := remat[r]; isRemat {
			continue
		}
		tag := tags.NewTag(
			fmt.Sprintf("%s.spill#%d", fn.Name, len(fn.Locals)),
			ir.TagSpill, fn.Name, 8, 8)
		tag.Strong = true
		slot[r] = tag.ID
		fn.Locals = append(fn.Locals, tag.ID)
	}
	stats.Spilled = len(spills)

	// The caller passes the representative registers of a coalesced
	// graph together with its find function, so member registers of
	// a spilled class resolve to the class slot.
	for _, b := range fn.Blocks {
		var out []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]

			// Loads (or rematerializations) for spilled uses.
			loaded := make(map[ir.Reg]ir.Reg)
			in.MapUses(func(u ir.Reg) ir.Reg {
				rep := find(u)
				if !spillSet[rep] {
					return u
				}
				if t, ok := loaded[rep]; ok {
					return t
				}
				t := fn.NewReg()
				if def, isRemat := remat[rep]; isRemat {
					def.Dst = t
					out = append(out, def)
				} else {
					out = append(out, ir.Instr{Op: ir.OpSLoad, Dst: t, Tag: slot[rep], Size: 8})
					stats.SpillLoads++
				}
				loaded[rep] = t
				return t
			})

			// Store after a spilled definition. A rematerialized
			// class deletes its definition instead: every use has
			// been replaced by a re-issued copy, so the original
			// (pure, operand-free) instruction is dead — keeping it
			// would preserve the very live range that failed to
			// color, and the allocator would pick it again forever.
			d := in.Def()
			if d != ir.RegInvalid && spillSet[find(d)] {
				rep := find(d)
				if _, isRemat := remat[rep]; isRemat {
					continue
				}
				t := fn.NewReg()
				in.Dst = t
				out = append(out, in)
				out = append(out, ir.Instr{Op: ir.OpSStore, A: t, Tag: slot[rep], Size: 8})
				stats.SpillStores++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}

	// A spilled parameter receives its argument in the register at
	// entry; store it to the slot immediately. (Parameters are never
	// rematerializable: their definition is the call itself.)
	var entryStores []ir.Instr
	for _, p := range fn.Params {
		rep := find(p)
		if spillSet[rep] {
			if _, isRemat := remat[rep]; isRemat {
				continue
			}
			entryStores = append(entryStores, ir.Instr{Op: ir.OpSStore, A: p, Tag: slot[rep], Size: 8})
			stats.SpillStores++
		}
	}
	if len(entryStores) > 0 {
		fn.Entry.Instrs = append(entryStores, fn.Entry.Instrs...)
	}
	return stats
}
