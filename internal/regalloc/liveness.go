// Package regalloc implements Chaitin–Briggs graph-coloring register
// allocation with conservative coalescing and optimistic coloring,
// after Briggs, Cooper & Torczon [1]. Promotion introduces copies
// between promoted values and their home registers; the coalescer
// removes most of them ("It is quite effective at eliminating copies
// like these", §3.1). When demand for registers exceeds the supply K,
// values spill to dedicated frame slots with explicit loads and
// stores — the mechanism behind the paper's water anecdote, where
// promoting twenty-eight values caused enough spilling to lose the
// promotion's benefit (§5).
package regalloc

import (
	"math/bits"

	"regpromo/internal/dataflow"
	"regpromo/internal/ir"
)

// bitset is a fixed-capacity bit vector over register numbers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) has(r ir.Reg) bool { return s[r/64]&(1<<(uint(r)%64)) != 0 }
func (s bitset) add(r ir.Reg)      { s[r/64] |= 1 << (uint(r) % 64) }
func (s bitset) del(r ir.Reg)      { s[r/64] &^= 1 << (uint(r) % 64) }

func (s bitset) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s bitset) orInto(o bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s bitset) clone() bitset {
	out := make(bitset, len(s))
	copy(out, s)
	return out
}

func (s bitset) forEach(f func(ir.Reg)) {
	for i, w := range s {
		for w != 0 {
			f(ir.Reg(i*64 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// liveness computes per-block live-in/live-out sets.
type liveness struct {
	liveIn  []bitset
	liveOut []bitset
}

func computeLiveness(fn *ir.Func) *liveness {
	n := len(fn.Blocks)
	nr := fn.NumRegs
	use := make([]bitset, n)
	def := make([]bitset, n)
	lv := &liveness{liveIn: make([]bitset, n), liveOut: make([]bitset, n)}
	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		u, d := newBitset(nr), newBitset(nr)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses(buf[:0]) {
				if !d.has(r) {
					u.add(r)
				}
			}
			if dd := in.Def(); dd != ir.RegInvalid {
				d.add(dd)
			}
		}
		use[b.ID], def[b.ID] = u, d
		lv.liveIn[b.ID] = newBitset(nr)
		lv.liveOut[b.ID] = newBitset(nr)
	}
	// Standard backward problem: out = ∪ succ in; in = use ∪ (out − def).
	// The worklist visits blocks in postorder and only re-examines a
	// block when a successor's live-in grew; the least fixpoint is the
	// same one the old round-robin sweep computed.
	tmp := newBitset(nr)
	dataflow.SolveBlocks(fn, dataflow.Backward, func(b *ir.Block) bool {
		out := lv.liveOut[b.ID]
		for _, s := range b.Succs {
			out.orInto(lv.liveIn[s.ID])
		}
		copy(tmp, out)
		for j := range tmp {
			tmp[j] &^= def[b.ID][j]
			tmp[j] |= use[b.ID][j]
		}
		return lv.liveIn[b.ID].orInto(tmp)
	})
	return lv
}

// Liveness exposes the allocator's per-block live-register sets to
// other subsystems — the static pressure analysis in
// internal/analysis/certify reads promoted-value liveness off it
// without re-deriving the dataflow.
type Liveness struct {
	lv *liveness
}

// ComputeLiveness solves the allocator's backward liveness problem
// over fn and returns the per-block live-in/live-out sets. Register
// numbers are fn's current (virtual or physical) names; callers that
// care about specific registers must query before any renaming pass.
func ComputeLiveness(fn *ir.Func) *Liveness {
	return &Liveness{lv: computeLiveness(fn)}
}

// LiveInHas reports whether r is live at the entry of block b.
func (l *Liveness) LiveInHas(b ir.BlockID, r ir.Reg) bool {
	return l.has(l.lv.liveIn, b, r)
}

// LiveOutHas reports whether r is live at the exit of block b.
func (l *Liveness) LiveOutHas(b ir.BlockID, r ir.Reg) bool {
	return l.has(l.lv.liveOut, b, r)
}

// LiveInCount returns how many registers are live at the entry of b.
func (l *Liveness) LiveInCount(b ir.BlockID) int {
	if int(b) >= len(l.lv.liveIn) {
		return 0
	}
	return l.lv.liveIn[b].count()
}

// LiveOutCount returns how many registers are live at the exit of b.
func (l *Liveness) LiveOutCount(b ir.BlockID) int {
	if int(b) >= len(l.lv.liveOut) {
		return 0
	}
	return l.lv.liveOut[b].count()
}

func (l *Liveness) has(sets []bitset, b ir.BlockID, r ir.Reg) bool {
	if int(b) >= len(sets) || r < 0 {
		return false
	}
	s := sets[b]
	if int(r)/64 >= len(s) {
		return false
	}
	return s.has(r)
}
