package regalloc

import (
	"fmt"
	"math/bits"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
)

// DefaultK is the physical register count used by the experiments,
// matching a generous RISC integer file.
const DefaultK = 32

// debugRounds enables per-round spill tracing (tests only).
var debugRounds = false

// maxLiveSeen tracks the largest live set observed while tracing.
var maxLiveSeen = 0

// DebugRounds toggles per-round spill tracing.
func DebugRounds(v bool) { debugRounds = v }

// Options configure allocation.
type Options struct {
	// K is the number of physical registers (DefaultK when 0).
	K int
}

// Stats reports allocation activity.
type Stats struct {
	// Spilled counts virtual registers sent to memory.
	Spilled int
	// SpillLoads and SpillStores count the static spill operations
	// inserted.
	SpillLoads  int
	SpillStores int
	// Coalesced counts copies eliminated by coalescing (including
	// copies whose ends happened to receive one color).
	Coalesced int
	// Rounds is the number of build–color iterations used.
	Rounds int
	// MaxLive is the largest live set observed at any block boundary
	// while building the interference graph — the register-pressure
	// figure promotion policies are judged against.
	MaxLive int
}

// Add folds per-function stats into a module total. Counters sum;
// Rounds and MaxLive take the worst function — max is commutative, so
// parallel per-function allocation folds to the same module totals as
// a serial sweep.
func (s *Stats) Add(o Stats) {
	s.Spilled += o.Spilled
	s.SpillLoads += o.SpillLoads
	s.SpillStores += o.SpillStores
	s.Coalesced += o.Coalesced
	if o.Rounds > s.Rounds {
		s.Rounds = o.Rounds
	}
	if o.MaxLive > s.MaxLive {
		s.MaxLive = o.MaxLive
	}
}

// Run allocates registers for every function.
func Run(m *ir.Module, opts Options) (Stats, error) {
	var total Stats
	for _, fn := range m.FuncsInOrder() {
		st, err := Func(fn, opts, &m.Tags)
		if err != nil {
			return total, err
		}
		total.Add(st)
	}
	return total, nil
}

// graph is the interference graph with coalescing union-find.
//
// Adjacency is a dense bit matrix: row r holds one bit per interfering
// register. The rows are kept clean — they only ever contain current
// union-find representatives, because every merge eagerly rewrites the
// rows that mention the dying node — so a node's degree is just the
// popcount of its row, instead of the find-resolve-and-dedup walk the
// old map representation needed (formerly ~85% of compile time).
type graph struct {
	n     int
	adj   []bitset // lazily allocated rows, each n bits
	alias []ir.Reg // union-find parent (self when representative)
	moves [][2]ir.Reg
	cost  []float64
	// isParam marks registers that receive arguments at entry.
	isParam []bool
	// maxLive is the largest live set seen at a block boundary during
	// construction (register pressure).
	maxLive int
	// remat maps a single-definition register whose value can be
	// recomputed anywhere (constants and address materializations)
	// to its defining instruction. Spilling such a register re-issues
	// the definition at each use instead of going through memory
	// (Briggs-style rematerialization).
	remat map[ir.Reg]ir.Instr
	// defs counts definitions per register.
	defs []int
}

func (g *graph) find(r ir.Reg) ir.Reg {
	for g.alias[r] != r {
		g.alias[r] = g.alias[g.alias[r]]
		r = g.alias[r]
	}
	return r
}

func (g *graph) interferes(a, b ir.Reg) bool {
	a, b = g.find(a), g.find(b)
	if a == b {
		return false
	}
	return g.adj[a] != nil && g.adj[a].has(b)
}

func (g *graph) row(r ir.Reg) bitset {
	if g.adj[r] == nil {
		g.adj[r] = newBitset(g.n)
	}
	return g.adj[r]
}

func (g *graph) addEdge(a, b ir.Reg) {
	a, b = g.find(a), g.find(b)
	if a == b {
		return
	}
	g.row(a).add(b)
	g.row(b).add(a)
}

// Func allocates registers for one function. Spill slots are created
// through tags, which is the module tag table in a serial compile and
// a per-function staging allocator under the parallel middle-end.
func Func(fn *ir.Func, opts Options, tags ir.TagAlloc) (Stats, error) {
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	var stats Stats
	// Registers created by earlier spill rounds must not spill again:
	// re-spilling a reload temporary shuffles the value through yet
	// another slot without reducing pressure, and the allocator would
	// never converge. Spilling is reserved for original live ranges.
	noSpill := make(map[ir.Reg]bool)
	for round := 0; ; round++ {
		if round > 100 {
			return stats, fmt.Errorf("regalloc: %s did not converge after %d rounds (K=%d)", fn.Name, round, k)
		}
		stats.Rounds = round + 1
		g := build(fn)
		if g.maxLive > stats.MaxLive {
			stats.MaxLive = g.maxLive
		}
		stats.Coalesced += coalesce(g, k)
		colors, spills := color(g, fn, k, noSpill)
		if debugRounds {
			fmt.Printf("round %d: regs=%d spills=%d %v\n", round, fn.NumRegs, len(spills), spills)
		}
		if len(spills) == 0 {
			stats.Coalesced += rewrite(fn, g, colors)
			fn.Allocated = true
			if r := obs.Metrics(); r != nil {
				r.Counter("regalloc.funcs").Inc()
				r.Counter("regalloc.spilled").Add(int64(stats.Spilled))
				r.Counter("regalloc.coalesced").Add(int64(stats.Coalesced))
				r.Gauge("regalloc.max_live").SetMax(int64(stats.MaxLive))
				r.Histogram("regalloc.rounds", obs.SizeBuckets).Observe(int64(stats.Rounds))
			}
			return stats, nil
		}
		before := fn.NumRegs
		st := insertSpills(fn, spills, g, tags)
		for r := before; r < fn.NumRegs; r++ {
			noSpill[ir.Reg(r)] = true
		}
		stats.Spilled += len(spills)
		stats.SpillLoads += st.SpillLoads
		stats.SpillStores += st.SpillStores
	}
}

// build constructs the interference graph.
func build(fn *ir.Func) *graph {
	// Loop depths weight spill costs; dominator/loop discovery must
	// not mutate the CFG here because the liveness arrays are
	// indexed by block id.
	fn.RemoveUnreachable()
	dom := cfg.Dominators(fn)
	forest := cfg.FindLoops(fn, dom)
	lv := computeLiveness(fn)
	g := &graph{
		n:       fn.NumRegs,
		adj:     make([]bitset, fn.NumRegs),
		alias:   make([]ir.Reg, fn.NumRegs),
		cost:    make([]float64, fn.NumRegs),
		isParam: make([]bool, fn.NumRegs),
	}
	for i := range g.alias {
		g.alias[i] = ir.Reg(i)
	}
	for _, p := range fn.Params {
		g.isParam[p] = true
	}
	g.remat = make(map[ir.Reg]ir.Instr)
	g.defs = make([]int, fn.NumRegs)
	// Parameters carry an implicit entry definition, so an in-body
	// constant assignment to one is never rematerializable.
	for _, p := range fn.Params {
		g.defs[p]++
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Def()
			if d == ir.RegInvalid {
				continue
			}
			g.defs[d]++
			switch in.Op {
			case ir.OpLoadI, ir.OpLoadF, ir.OpAddrOf:
				g.remat[d] = in.Clone()
			}
		}
	}

	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		weight := 1.0
		for d := forest.Depth(b); d > 0 && weight < 1e6; d-- {
			weight *= 10
		}
		live := lv.liveOut[b.ID].clone()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			d := in.Def()
			if in.Op == ir.OpCopy {
				g.moves = append(g.moves, [2]ir.Reg{in.Dst, in.A})
				// The copy's source does not interfere with its
				// destination through this def.
				live.del(in.A)
			}
			if d != ir.RegInvalid {
				g.cost[d] += weight
				live.forEach(func(r ir.Reg) {
					if r != d {
						g.addEdge(d, r)
					}
				})
				live.del(d)
			}
			for _, u := range in.Uses(buf[:0]) {
				g.cost[u] += weight
				live.add(u)
			}
		}
		if n := live.count(); n > g.maxLive {
			g.maxLive = n
			if debugRounds && n > maxLiveSeen {
				maxLiveSeen = n
				fmt.Printf("  maxlive %d at top of %s\n", n, b.Label)
			}
		}
		if b == fn.Entry {
			// Everything live into the entry is defined "at once" by
			// the calling convention (parameters) or reads its zero
			// value; give them mutual edges so they get distinct
			// homes.
			var entryLive []ir.Reg
			live.forEach(func(r ir.Reg) { entryLive = append(entryLive, r) })
			for _, p := range fn.Params {
				entryLive = append(entryLive, p)
			}
			for i := 0; i < len(entryLive); i++ {
				for j := i + 1; j < len(entryLive); j++ {
					if entryLive[i] != entryLive[j] {
						g.addEdge(entryLive[i], entryLive[j])
					}
				}
			}
		}
	}
	// Rematerializable values are nearly free to "spill": bias the
	// allocator toward choosing them under pressure.
	for r, n := range g.defs {
		if n == 1 {
			if _, ok := g.remat[ir.Reg(r)]; ok {
				g.cost[r] *= 0.01
			}
		}
	}
	return g
}

// degreeOf counts r's distinct live neighbors. Rows hold only current
// representatives (merges rewrite them eagerly), so the degree is the
// row's popcount.
func (g *graph) degreeOf(r ir.Reg) int {
	r = g.find(r)
	if g.adj[r] == nil {
		return 0
	}
	return g.adj[r].count()
}

// canCoalesce applies the Briggs test (combined node has fewer than K
// neighbors of significant degree) and falls back to the George test
// (every neighbor of b either already interferes with a or is
// insignificant), either of which guarantees coalescing cannot turn a
// colorable graph uncolorable.
func (g *graph) canCoalesce(a, b ir.Reg, k int) bool {
	// Briggs, over the union of both neighborhoods.
	high := 0
	ra, rb := g.adj[a], g.adj[b]
	nw := 0
	if ra != nil {
		nw = len(ra)
	}
	if rb != nil && len(rb) > nw {
		nw = len(rb)
	}
	for i := 0; i < nw; i++ {
		var w uint64
		if ra != nil {
			w = ra[i]
		}
		if rb != nil {
			w |= rb[i]
		}
		for w != 0 {
			r := ir.Reg(i*64 + bits.TrailingZeros64(w))
			w &= w - 1
			if r == a || r == b {
				continue
			}
			if g.degreeOf(r) >= k {
				high++
			}
		}
	}
	if high < k {
		return true
	}
	// George, both orientations.
	george := func(x, y ir.Reg) bool {
		ok := true
		if g.adj[y] == nil {
			return true
		}
		xrow := g.adj[x]
		g.adj[y].forEach(func(r ir.Reg) {
			if !ok || r == x {
				return
			}
			if g.degreeOf(r) < k || (xrow != nil && xrow.has(r)) {
				return
			}
			ok = false
		})
		return ok
	}
	return george(a, b) || george(b, a)
}

// coalesce merges non-interfering move ends when a conservative test
// (Briggs or George) proves the merge safe.
func coalesce(g *graph, k int) int {
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, mv := range g.moves {
			a, b := g.find(mv[0]), g.find(mv[1])
			if a == b {
				continue
			}
			if g.interferes(a, b) {
				continue
			}
			// Never merge two parameter registers: each receives a
			// distinct argument at entry.
			if g.isParam[a] && g.isParam[b] {
				continue
			}
			if !g.canCoalesce(a, b, k) {
				continue
			}
			// Merge b into a, eagerly rewriting every row that
			// mentions b so rows keep holding representatives only.
			g.alias[b] = a
			arow := g.row(a)
			if g.adj[b] != nil {
				g.adj[b].forEach(func(r ir.Reg) {
					if r == a {
						return
					}
					arow.add(r)
					g.adj[r].del(b)
					g.adj[r].add(a)
				})
				g.adj[b] = nil
			}
			arow.del(a)
			arow.del(b)
			g.isParam[a] = g.isParam[a] || g.isParam[b]
			g.cost[a] += g.cost[b]
			merged++
			changed = true
		}
	}
	return merged
}

// color runs simplify/select with optimistic spilling; it returns the
// color assignment (indexed by representative, -1 = spilled/absent)
// and the registers that must spill. Classes containing a register
// from noSpill are chosen as spill candidates only when nothing else
// is available.
func color(g *graph, fn *ir.Func, k int, noSpill map[ir.Reg]bool) ([]int, []ir.Reg) {
	noSpillRep := newBitset(g.n)
	for r := range noSpill {
		if int(r) < g.n {
			noSpillRep.add(g.find(r))
		}
	}
	// Collect representative nodes actually used.
	reps := newBitset(g.n)
	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.RegInvalid {
				reps.add(g.find(d))
			}
			for _, u := range in.Uses(buf[:0]) {
				reps.add(g.find(u))
			}
		}
	}
	for _, p := range fn.Params {
		reps.add(g.find(p))
	}
	var repList []ir.Reg
	reps.forEach(func(r ir.Reg) { repList = append(repList, r) })

	// Working adjacency restricted to used representatives, with an
	// incrementally maintained degree array.
	adj := make([]bitset, g.n)
	deg := make([]int, g.n)
	for _, r := range repList {
		row := newBitset(g.n)
		if g.adj[r] != nil {
			copy(row, g.adj[r])
			for i := range row {
				row[i] &= reps[i]
			}
			row.del(r)
		}
		adj[r] = row
		deg[r] = row.count()
	}

	removed := newBitset(g.n)
	var stack []ir.Reg
	remaining := len(repList)
	for remaining > 0 {
		// Pick a trivially colorable node (lowest-numbered first);
		// otherwise the cheapest spill candidate (optimistically
		// pushed).
		var pick ir.Reg = ir.RegInvalid
		var pickSpill ir.Reg = ir.RegInvalid
		var pickLast ir.Reg = ir.RegInvalid
		bestCost := 0.0
		lastCost := 0.0
		for _, r := range repList {
			if removed.has(r) {
				continue
			}
			if deg[r] < k {
				pick = r
				break
			}
			c := g.cost[r] / float64(deg[r]+1)
			if noSpillRep.has(r) {
				if pickLast == ir.RegInvalid || c < lastCost {
					pickLast = r
					lastCost = c
				}
				continue
			}
			if pickSpill == ir.RegInvalid || c < bestCost {
				pickSpill = r
				bestCost = c
			}
		}
		if pick == ir.RegInvalid {
			pick = pickSpill
		}
		if pick == ir.RegInvalid {
			pick = pickLast
		}
		removed.add(pick)
		stack = append(stack, pick)
		adj[pick].forEach(func(n ir.Reg) {
			if !removed.has(n) {
				deg[n]--
			}
		})
		remaining--
	}

	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, k)
	var spills []ir.Reg
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		for j := range used {
			used[j] = false
		}
		adj[r].forEach(func(n ir.Reg) {
			if c := colors[n]; c >= 0 {
				used[c] = true
			}
		})
		c := -1
		for j := 0; j < k; j++ {
			if !used[j] {
				c = j
				break
			}
		}
		if c == -1 {
			spills = append(spills, r)
			continue
		}
		colors[r] = c
	}
	return colors, spills
}

// rewrite renames every register to its color and drops copies whose
// ends received the same color. It returns the number of copies
// removed.
func rewrite(fn *ir.Func, g *graph, colors []int) int {
	rename := func(r ir.Reg) ir.Reg {
		if r == ir.RegInvalid {
			return r
		}
		c := colors[g.find(r)]
		if c < 0 {
			// Dead register (never used): park it in color 0.
			return 0
		}
		return ir.Reg(c)
	}
	removedCopies := 0
	maxColor := 0
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	for _, b := range fn.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			// Uses first, positionally: renaming by value would
			// collide once colors overlap old virtual numbers.
			in.MapUses(rename)
			if d := in.Def(); d != ir.RegInvalid {
				in.Dst = rename(d)
			}
			if in.Op == ir.OpCopy && in.Dst == in.A {
				removedCopies++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	for i, p := range fn.Params {
		fn.Params[i] = rename(p)
	}
	fn.NumRegs = maxColor + 1
	return removedCopies
}
