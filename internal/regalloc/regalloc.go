package regalloc

import (
	"fmt"
	"sort"

	"regpromo/internal/cfg"
	"regpromo/internal/ir"
)

// DefaultK is the physical register count used by the experiments,
// matching a generous RISC integer file.
const DefaultK = 32

// debugRounds enables per-round spill tracing (tests only).
var debugRounds = false

// maxLiveSeen tracks the largest live set observed while tracing.
var maxLiveSeen = 0

// DebugRounds toggles per-round spill tracing.
func DebugRounds(v bool) { debugRounds = v }

// Options configure allocation.
type Options struct {
	// K is the number of physical registers (DefaultK when 0).
	K int
}

// Stats reports allocation activity.
type Stats struct {
	// Spilled counts virtual registers sent to memory.
	Spilled int
	// SpillLoads and SpillStores count the static spill operations
	// inserted.
	SpillLoads  int
	SpillStores int
	// Coalesced counts copies eliminated by coalescing (including
	// copies whose ends happened to receive one color).
	Coalesced int
	// Rounds is the number of build–color iterations used.
	Rounds int
}

func (s *Stats) add(o Stats) {
	s.Spilled += o.Spilled
	s.SpillLoads += o.SpillLoads
	s.SpillStores += o.SpillStores
	s.Coalesced += o.Coalesced
	if o.Rounds > s.Rounds {
		s.Rounds = o.Rounds
	}
}

// Run allocates registers for every function.
func Run(m *ir.Module, opts Options) (Stats, error) {
	var total Stats
	for _, fn := range m.FuncsInOrder() {
		st, err := Func(m, fn, opts)
		if err != nil {
			return total, err
		}
		total.add(st)
	}
	return total, nil
}

// graph is the interference graph with coalescing union-find.
type graph struct {
	n     int
	adj   []map[ir.Reg]bool
	alias []ir.Reg // union-find parent (self when representative)
	moves [][2]ir.Reg
	cost  []float64
	// isParam marks registers that receive arguments at entry.
	isParam []bool
	// remat maps a single-definition register whose value can be
	// recomputed anywhere (constants and address materializations)
	// to its defining instruction. Spilling such a register re-issues
	// the definition at each use instead of going through memory
	// (Briggs-style rematerialization).
	remat map[ir.Reg]ir.Instr
	// defs counts definitions per register.
	defs map[ir.Reg]int
}

func (g *graph) find(r ir.Reg) ir.Reg {
	for g.alias[r] != r {
		g.alias[r] = g.alias[g.alias[r]]
		r = g.alias[r]
	}
	return r
}

func (g *graph) interferes(a, b ir.Reg) bool {
	a, b = g.find(a), g.find(b)
	if a == b {
		return false
	}
	return g.adj[a][b]
}

func (g *graph) addEdge(a, b ir.Reg) {
	a, b = g.find(a), g.find(b)
	if a == b {
		return
	}
	if g.adj[a] == nil {
		g.adj[a] = make(map[ir.Reg]bool)
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[ir.Reg]bool)
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// Func allocates registers for one function.
func Func(m *ir.Module, fn *ir.Func, opts Options) (Stats, error) {
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	var stats Stats
	// Registers created by earlier spill rounds must not spill again:
	// re-spilling a reload temporary shuffles the value through yet
	// another slot without reducing pressure, and the allocator would
	// never converge. Spilling is reserved for original live ranges.
	noSpill := make(map[ir.Reg]bool)
	for round := 0; ; round++ {
		if round > 100 {
			return stats, fmt.Errorf("regalloc: %s did not converge after %d rounds (K=%d)", fn.Name, round, k)
		}
		stats.Rounds = round + 1
		g := build(fn)
		stats.Coalesced += coalesce(g, k)
		colors, spills := color(g, fn, k, noSpill)
		if debugRounds {
			fmt.Printf("round %d: regs=%d spills=%d %v\n", round, fn.NumRegs, len(spills), spills)
		}
		if len(spills) == 0 {
			stats.Coalesced += rewrite(fn, g, colors)
			fn.Allocated = true
			return stats, nil
		}
		before := fn.NumRegs
		st := insertSpills(m, fn, spills, g)
		for r := before; r < fn.NumRegs; r++ {
			noSpill[ir.Reg(r)] = true
		}
		stats.Spilled += len(spills)
		stats.SpillLoads += st.SpillLoads
		stats.SpillStores += st.SpillStores
	}
}

// build constructs the interference graph.
func build(fn *ir.Func) *graph {
	// Loop depths weight spill costs; dominator/loop discovery must
	// not mutate the CFG here because the liveness arrays are
	// indexed by block id.
	fn.RemoveUnreachable()
	dom := cfg.Dominators(fn)
	forest := cfg.FindLoops(fn, dom)
	lv := computeLiveness(fn)
	g := &graph{
		n:       fn.NumRegs,
		adj:     make([]map[ir.Reg]bool, fn.NumRegs),
		alias:   make([]ir.Reg, fn.NumRegs),
		cost:    make([]float64, fn.NumRegs),
		isParam: make([]bool, fn.NumRegs),
	}
	for i := range g.alias {
		g.alias[i] = ir.Reg(i)
	}
	for _, p := range fn.Params {
		g.isParam[p] = true
	}
	g.remat = make(map[ir.Reg]ir.Instr)
	g.defs = make(map[ir.Reg]int)
	// Parameters carry an implicit entry definition, so an in-body
	// constant assignment to one is never rematerializable.
	for _, p := range fn.Params {
		g.defs[p]++
	}
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			d := in.Def()
			if d == ir.RegInvalid {
				continue
			}
			g.defs[d]++
			switch in.Op {
			case ir.OpLoadI, ir.OpLoadF, ir.OpAddrOf:
				g.remat[d] = in.Clone()
			}
		}
	}

	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		weight := 1.0
		for d := forest.Depth(b); d > 0 && weight < 1e6; d-- {
			weight *= 10
		}
		live := lv.liveOut[b.ID].clone()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			d := in.Def()
			if in.Op == ir.OpCopy {
				g.moves = append(g.moves, [2]ir.Reg{in.Dst, in.A})
				// The copy's source does not interfere with its
				// destination through this def.
				live.del(in.A)
			}
			if d != ir.RegInvalid {
				g.cost[d] += weight
				live.forEach(func(r ir.Reg) {
					if r != d {
						g.addEdge(d, r)
					}
				})
				live.del(d)
			}
			for _, u := range in.Uses(buf[:0]) {
				g.cost[u] += weight
				live.add(u)
			}
		}
		if debugRounds {
			n := 0
			live.forEach(func(r ir.Reg) { n++ })
			if n > maxLiveSeen {
				maxLiveSeen = n
				fmt.Printf("  maxlive %d at top of %s\n", n, b.Label)
			}
		}
		if b == fn.Entry {
			// Everything live into the entry is defined "at once" by
			// the calling convention (parameters) or reads its zero
			// value; give them mutual edges so they get distinct
			// homes.
			var entryLive []ir.Reg
			live.forEach(func(r ir.Reg) { entryLive = append(entryLive, r) })
			for _, p := range fn.Params {
				entryLive = append(entryLive, p)
			}
			for i := 0; i < len(entryLive); i++ {
				for j := i + 1; j < len(entryLive); j++ {
					if entryLive[i] != entryLive[j] {
						g.addEdge(entryLive[i], entryLive[j])
					}
				}
			}
		}
	}
	// Rematerializable values are nearly free to "spill": bias the
	// allocator toward choosing them under pressure.
	for r, n := range g.defs {
		if n == 1 {
			if _, ok := g.remat[r]; ok {
				g.cost[r] *= 0.01
			}
		}
	}
	return g
}

// degreeOf counts r's distinct live neighbors (resolving aliases:
// adjacency sets accumulate stale entries as classes merge, and the
// stale duplicates must not inflate the conservative tests).
func (g *graph) degreeOf(r ir.Reg) int {
	r = g.find(r)
	seen := map[ir.Reg]bool{}
	for n := range g.adj[r] {
		n = g.find(n)
		if n != r {
			seen[n] = true
		}
	}
	return len(seen)
}

// canCoalesce applies the Briggs test (combined node has fewer than K
// neighbors of significant degree) and falls back to the George test
// (every neighbor of b either already interferes with a or is
// insignificant), either of which guarantees coalescing cannot turn a
// colorable graph uncolorable.
func (g *graph) canCoalesce(a, b ir.Reg, k int) bool {
	// Briggs.
	high := 0
	seen := map[ir.Reg]bool{}
	for _, nb := range []map[ir.Reg]bool{g.adj[a], g.adj[b]} {
		for r := range nb {
			r = g.find(r)
			if r == a || r == b || seen[r] {
				continue
			}
			seen[r] = true
			if g.degreeOf(r) >= k {
				high++
			}
		}
	}
	if high < k {
		return true
	}
	// George, both orientations.
	george := func(x, y ir.Reg) bool {
		for r := range g.adj[y] {
			r = g.find(r)
			if r == x || r == y {
				continue
			}
			if g.degreeOf(r) < k || g.adj[x][r] {
				continue
			}
			return false
		}
		return true
	}
	return george(a, b) || george(b, a)
}

// coalesce merges non-interfering move ends when a conservative test
// (Briggs or George) proves the merge safe.
func coalesce(g *graph, k int) int {
	merged := 0
	for changed := true; changed; {
		changed = false
		for _, mv := range g.moves {
			a, b := g.find(mv[0]), g.find(mv[1])
			if a == b {
				continue
			}
			if g.interferes(a, b) {
				continue
			}
			// Never merge two parameter registers: each receives a
			// distinct argument at entry.
			if g.isParam[a] && g.isParam[b] {
				continue
			}
			if !g.canCoalesce(a, b, k) {
				continue
			}
			// Merge b into a.
			g.alias[b] = a
			if g.adj[a] == nil {
				g.adj[a] = make(map[ir.Reg]bool)
			}
			for r := range g.adj[b] {
				r2 := g.find(r)
				if r2 == a {
					continue
				}
				g.adj[a][r2] = true
				delete(g.adj[r2], b)
				g.adj[r2][a] = true
			}
			g.adj[b] = nil
			g.isParam[a] = g.isParam[a] || g.isParam[b]
			g.cost[a] += g.cost[b]
			merged++
			changed = true
		}
	}
	return merged
}

// color runs simplify/select with optimistic spilling; it returns the
// color assignment and the registers that must spill. Classes
// containing a register from noSpill are chosen as spill candidates
// only when nothing else is available.
func color(g *graph, fn *ir.Func, k int, noSpill map[ir.Reg]bool) (map[ir.Reg]int, []ir.Reg) {
	noSpillRep := make(map[ir.Reg]bool, len(noSpill))
	for r := range noSpill {
		if int(r) < g.n {
			noSpillRep[g.find(r)] = true
		}
	}
	// Collect representative nodes actually used.
	reps := map[ir.Reg]bool{}
	var buf [8]ir.Reg
	for _, b := range fn.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != ir.RegInvalid {
				reps[g.find(d)] = true
			}
			for _, u := range in.Uses(buf[:0]) {
				reps[g.find(u)] = true
			}
		}
	}
	for _, p := range fn.Params {
		reps[g.find(p)] = true
	}

	// Working degree map.
	deg := map[ir.Reg]int{}
	adj := map[ir.Reg]map[ir.Reg]bool{}
	for r := range reps {
		adj[r] = map[ir.Reg]bool{}
		for n := range g.adj[r] {
			n = g.find(n)
			if n != r && reps[n] {
				adj[r][n] = true
			}
		}
	}
	for r := range reps {
		deg[r] = len(adj[r])
	}

	removed := map[ir.Reg]bool{}
	var stack []ir.Reg
	remaining := len(reps)
	for remaining > 0 {
		// Pick a trivially colorable node; otherwise the cheapest
		// spill candidate (optimistically pushed).
		var pick ir.Reg = ir.RegInvalid
		var pickSpill ir.Reg = ir.RegInvalid
		var pickLast ir.Reg = ir.RegInvalid
		bestCost := 0.0
		lastCost := 0.0
		var order []ir.Reg
		for r := range reps {
			if !removed[r] {
				order = append(order, r)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, r := range order {
			if deg[r] < k {
				pick = r
				break
			}
			c := g.cost[r] / float64(deg[r]+1)
			if noSpillRep[r] {
				if pickLast == ir.RegInvalid || c < lastCost {
					pickLast = r
					lastCost = c
				}
				continue
			}
			if pickSpill == ir.RegInvalid || c < bestCost {
				pickSpill = r
				bestCost = c
			}
		}
		if pick == ir.RegInvalid {
			pick = pickSpill
		}
		if pick == ir.RegInvalid {
			pick = pickLast
		}
		removed[pick] = true
		stack = append(stack, pick)
		for n := range adj[pick] {
			if !removed[n] {
				deg[n]--
			}
		}
		remaining--
	}

	colors := map[ir.Reg]int{}
	var spills []ir.Reg
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		used := map[int]bool{}
		for n := range adj[r] {
			if c, ok := colors[n]; ok {
				used[c] = true
			}
		}
		c := -1
		for j := 0; j < k; j++ {
			if !used[j] {
				c = j
				break
			}
		}
		if c == -1 {
			spills = append(spills, r)
			continue
		}
		colors[r] = c
	}
	return colors, spills
}

// rewrite renames every register to its color and drops copies whose
// ends received the same color. It returns the number of copies
// removed.
func rewrite(fn *ir.Func, g *graph, colors map[ir.Reg]int) int {
	rename := func(r ir.Reg) ir.Reg {
		if r == ir.RegInvalid {
			return r
		}
		c, ok := colors[g.find(r)]
		if !ok {
			// Dead register (never used): park it in color 0.
			return 0
		}
		return ir.Reg(c)
	}
	removedCopies := 0
	maxColor := 0
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	for _, b := range fn.Blocks {
		out := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			// Uses first, positionally: renaming by value would
			// collide once colors overlap old virtual numbers.
			in.MapUses(rename)
			if d := in.Def(); d != ir.RegInvalid {
				in.Dst = rename(d)
			}
			if in.Op == ir.OpCopy && in.Dst == in.A {
				removedCopies++
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	for i, p := range fn.Params {
		fn.Params[i] = rename(p)
	}
	fn.NumRegs = maxColor + 1
	return removedCopies
}
