// Package regpromo's root benchmark harness regenerates every table
// and figure of Cooper & Lu, "Register Promotion in C Programs"
// (PLDI 1997), as Go benchmarks. Each BenchmarkFigure* target
// compiles and executes the packaged workload suite under the paper's
// configurations and reports the dynamic counts as benchmark metrics:
//
//	go test -bench=Figure5 -benchmem        # total operations table
//	go test -bench=Figure6 -benchmem        # stores table
//	go test -bench=Figure7 -benchmem        # loads table
//	go test -bench=Section33 -benchmem      # §3.3 pointer-promotion study
//
// Metrics use the pattern <program>/<analysis>: ops-without,
// ops-with, and pct-removed — the three columns of the paper's
// tables. The cmd/rpbench tool prints the same data as tables.
package regpromo_test

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
)

// TestNoRegressionAgainstBaseline guards the benchmark trajectory:
// when a recorded baseline exists (the newest BENCH_*.json in the repo
// root, written by `rpbench -json`), the current dynamic total-ops for
// every program/configuration cell must not regress more than 1%
// against it. With no baseline recorded the test is skipped — run
// `go run ./cmd/rpbench -json` to record one.
func TestNoRegressionAgainstBaseline(t *testing.T) {
	baseline, path, err := bench.LatestBaseline(".")
	if errors.Is(err, os.ErrNotExist) {
		t.Skip("no BENCH_*.json baseline recorded; run `go run ./cmd/rpbench -json`")
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("comparing against baseline %s (%s)", path, baseline.Timestamp)

	var programs []string
	for _, p := range baseline.Programs {
		programs = append(programs, p.Name)
	}
	current, err := bench.CollectReport(bench.Options{Programs: programs})
	if err != nil {
		t.Fatal(err)
	}
	const tolerance = 1.01
	for _, bp := range baseline.Programs {
		cp, ok := current.Program(bp.Name)
		if !ok {
			t.Errorf("%s: in baseline but missing from current suite", bp.Name)
			continue
		}
		for _, bc := range bp.Configs {
			cc, ok := cp.Config(bc.Analysis, bc.Promote)
			if !ok {
				t.Errorf("%s/%s promote=%v: configuration missing from current run",
					bp.Name, bc.Analysis, bc.Promote)
				continue
			}
			if bc.Counts.Ops <= 0 {
				continue
			}
			limit := float64(bc.Counts.Ops) * tolerance
			if float64(cc.Counts.Ops) > limit {
				t.Errorf("%s/%s promote=%v: dynamic total-ops regressed >1%%: baseline %d, now %d",
					bp.Name, bc.Analysis, bc.Promote, bc.Counts.Ops, cc.Counts.Ops)
			}
		}
	}
}

// reportFigure runs the measurement matrix once per benchmark
// iteration and publishes each row's columns as metrics.
func reportFigure(b *testing.B, metric bench.Metric) {
	b.ReportAllocs()
	var fr *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		fr, err = bench.RunFigures(bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range fr.Rows[metric] {
		key := row.Program + "/" + row.Analysis
		b.ReportMetric(float64(row.Without), key+":without")
		b.ReportMetric(float64(row.With), key+":with")
		b.ReportMetric(row.PercentRemoved(), key+":%removed")
	}
}

// BenchmarkFigure5TotalOperations regenerates the paper's Figure 5.
func BenchmarkFigure5TotalOperations(b *testing.B) {
	reportFigure(b, bench.TotalOps)
}

// BenchmarkFigure6Stores regenerates the paper's Figure 6.
func BenchmarkFigure6Stores(b *testing.B) {
	reportFigure(b, bench.Stores)
}

// BenchmarkFigure7Loads regenerates the paper's Figure 7.
func BenchmarkFigure7Loads(b *testing.B) {
	reportFigure(b, bench.Loads)
}

// BenchmarkSection33PointerPromotion reproduces the §3.3 comparison:
// what pointer-based promotion removes beyond scalar promotion, per
// program (fft should be the only significant success).
func BenchmarkSection33PointerPromotion(b *testing.B) {
	b.ReportAllocs()
	var scalar, ptr *bench.FigureResult
	for i := 0; i < b.N; i++ {
		var err error
		scalar, err = bench.RunFigures(bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ptr, err = bench.RunFigures(bench.Options{PointerPromotion: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	index := func(rows []bench.Row) map[string]bench.Row {
		out := map[string]bench.Row{}
		for _, r := range rows {
			if r.Analysis == "pointer" {
				out[r.Program] = r
			}
		}
		return out
	}
	s := index(scalar.Rows[bench.TotalOps])
	p := index(ptr.Rows[bench.TotalOps])
	for name, sr := range s {
		b.ReportMetric(float64(sr.With-p[name].With), name+":extra-ops-removed")
	}
}

// BenchmarkPerProgram times one full compile+execute cycle per suite
// program under the paper's principal configuration (MOD/REF with
// promotion), for tracking harness performance itself.
func BenchmarkPerProgram(b *testing.B) {
	for _, p := range bench.Suite() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := driver.Config{Analysis: driver.ModRef, Promote: true}
			var last *bench.Measurement
			for i := 0; i < b.N; i++ {
				m, err := bench.Measure(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.Counts.Ops), "dynamic-ops")
		})
	}
}

// BenchmarkAblationDemotionStores measures the SkipUnwrittenStores
// refinement (DESIGN.md ablation): how many demotion stores the
// paper-faithful always-demote policy costs.
func BenchmarkAblationDemotionStores(b *testing.B) {
	b.ReportAllocs()
	total := int64(0)
	saved := int64(0)
	for i := 0; i < b.N; i++ {
		total, saved = 0, 0
		for _, p := range bench.Suite() {
			faithful, err := bench.Measure(p, driver.Config{Analysis: driver.ModRef, Promote: true})
			if err != nil {
				b.Fatal(err)
			}
			refined, err := bench.Measure(p, driver.Config{
				Analysis: driver.ModRef, Promote: true, SkipUnwrittenStores: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			if refined.Output != faithful.Output {
				b.Fatalf("%s: ablation changed output", p.Name)
			}
			total += faithful.Counts.Stores
			saved += faithful.Counts.Stores - refined.Counts.Stores
		}
	}
	b.ReportMetric(float64(saved), "stores-saved")
	b.ReportMetric(100*float64(saved)/float64(total), "%of-stores")
}

// BenchmarkRegisterPressureSweep compiles water across register
// supplies, tracing how spills erode promotion's benefit (the §5
// register-pressure discussion as a curve rather than an anecdote).
func BenchmarkRegisterPressureSweep(b *testing.B) {
	var water bench.Program
	for _, p := range bench.Suite() {
		if p.Name == "water" {
			water = p
		}
	}
	for _, k := range []int{16, 24, 32, 48, 64, 96} {
		k := k
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var with, without *bench.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				without, err = bench.Measure(water, driver.Config{Analysis: driver.ModRef, K: k})
				if err != nil {
					b.Fatal(err)
				}
				with, err = bench.Measure(water, driver.Config{Analysis: driver.ModRef, Promote: true, K: k})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(without.Counts.Ops-with.Counts.Ops), "ops-removed")
			b.ReportMetric(float64(with.Spilled), "spilled")
		})
	}
}

// BenchmarkThrottleAblation measures the §3.4 bin-packing throttle on
// the register-pressure programs: throttling should recover the
// baseline when promotion would only cause spilling.
func BenchmarkThrottleAblation(b *testing.B) {
	for _, name := range []string{"water", "mlink"} {
		var prog bench.Program
		for _, p := range bench.Suite() {
			if p.Name == name {
				prog = p
			}
		}
		b.Run(name, func(b *testing.B) {
			var plain, throttled *bench.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				plain, err = bench.Measure(prog, driver.Config{Analysis: driver.ModRef, Promote: true})
				if err != nil {
					b.Fatal(err)
				}
				throttled, err = bench.Measure(prog, driver.Config{Analysis: driver.ModRef, Promote: true, Throttle: 32})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plain.Counts.Loads), "loads-unthrottled")
			b.ReportMetric(float64(throttled.Counts.Loads), "loads-throttled")
			b.ReportMetric(float64(plain.Spilled), "spills-unthrottled")
			b.ReportMetric(float64(throttled.Spilled), "spills-throttled")
		})
	}
}

// BenchmarkInterpreter measures raw interpreter throughput, the
// substrate every figure rests on.
func BenchmarkInterpreter(b *testing.B) {
	src := `
int acc;
int main(void) {
	int i;
	for (i = 0; i < 100000; i++) acc = (acc + i) & 1048575;
	return acc & 127;
}`
	c, err := driver.CompileSource("loop.c", src, driver.Config{Analysis: driver.ModRef, Promote: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Counts.Ops
	}
	b.ReportMetric(float64(ops), "dynamic-ops")
}
