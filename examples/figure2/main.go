// Figure 2: the paper's worked example. A triply nested loop touches
// three tags — C stored in the outer loop, B stored in the middle loop
// but also referenced by a call there, A loaded in the inner loop but
// referenced ambiguously by a call in the outer loop. This program
// compiles an equivalent C function, solves the Figure 1 equations,
// prints every loop's L_EXPLICIT / L_AMBIGUOUS / L_PROMOTABLE / L_LIFT
// set, and shows the rewritten IL — reproducing the paper's walkthrough
// (§3.2): A promoted around the middle loop, C around the outer loop,
// B not promotable at all.
//
//	go run ./examples/figure2
package main

import (
	_ "embed"
	"fmt"
	"log"
	"sort"

	"regpromo/internal/analysis/modref"
	"regpromo/internal/analysis/pointsto"
	"regpromo/internal/callgraph"
	"regpromo/internal/cc/irgen"
	"regpromo/internal/cc/parser"
	"regpromo/internal/cc/sema"
	"regpromo/internal/cfg"
	"regpromo/internal/ir"
	"regpromo/internal/opt/promote"
)

// The Figure 2 situation in C: extern_a's MOD/REF summary references A
// (it has A's address via the global pointer), and touch_b references
// B the same way. The source lives in testdata/figure2.c so the
// rpcc/rpexec tools can be pointed at the same program:
//
//	go run ./cmd/rpcc -promote -trace examples/figure2/testdata/figure2.c
//
//go:embed testdata/figure2.c
var src string

func main() {
	file, err := parser.Parse("figure2.c", src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sema.Check(file)
	if err != nil {
		log.Fatal(err)
	}
	m, err := irgen.Generate(prog)
	if err != nil {
		log.Fatal(err)
	}
	cg := callgraph.Build(m)
	modref.Run(m, cg)
	// The stores through pa/pb need points-to analysis to pin down
	// (under MOD/REF alone each may touch any addressed global, and A
	// would be ambiguous in every loop). The paper's front end knew
	// its helpers' side effects exactly; points-to recovers that.
	pointsto.Run(m, cg)
	modref.RefineMemOps(m)
	cg = callgraph.Build(m)
	modref.Run(m, cg)

	fn := m.Funcs["fig2"]
	_, forest := cfg.Normalize(fn)
	info := promote.AnalyzeFunc(m, fn, forest)

	loops := forest.PreorderLoops()
	sort.Slice(loops, func(i, j int) bool { return loops[i].Depth < loops[j].Depth })
	fmt.Println("Figure 1 equations solved for fig2's loop nest:")
	fmt.Println()
	names := []string{"outer", "middle", "inner"}
	for i, l := range loops {
		ls := info.ByLoop[l]
		name := "loop"
		if i < len(names) {
			name = names[i]
		}
		fmt.Printf("%-6s (header %s, depth %d)\n", name, l.Header.Label, l.Depth)
		fmt.Printf("  L_EXPLICIT   = %s\n", pretty(ls.Explicit, m))
		fmt.Printf("  L_AMBIGUOUS  = %s\n", pretty(ls.Ambiguous, m))
		fmt.Printf("  L_PROMOTABLE = %s\n", pretty(ls.Promotable, m))
		fmt.Printf("  L_LIFT       = %s\n", pretty(ls.Lift, m))
		fmt.Println()
	}

	stats := promote.Func(m, fn, promote.Options{})
	fmt.Printf("promotion rewrote the function: %d values promoted, %d refs became copies\n",
		stats.ScalarPromotions, stats.RefsRewritten)
	fmt.Println()
	fmt.Println("As in the paper: C is promotable in the outer loop (never")
	fmt.Println("ambiguous); A is promotable in the two inner loops and lifted")
	fmt.Println("around the middle one (the outer loop's call references it);")
	fmt.Println("B is referenced ambiguously in the very loop that stores it,")
	fmt.Println("so no opportunity exists.")
	_ = ir.FormatFunc // keep the import for readers who want to dump fn
}

// pretty keeps only the A/B/C tags so the output matches the paper's
// tables (the loop-control variables live in registers and never
// appear; the pa/pb globals do appear in ambiguous sets).
func pretty(s ir.TagSet, m *ir.Module) string {
	if s.IsTop() {
		return "[*]"
	}
	out := "["
	first := true
	for _, id := range s.IDs() {
		name := m.Tags.Get(id).Name
		if name != "A" && name != "B" && name != "C" {
			continue
		}
		if !first {
			out += ","
		}
		out += name
		first = false
	}
	return out + "]"
}
