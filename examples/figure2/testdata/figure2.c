int A;
int B;
int C;

int *pa = &A;
int *pb = &B;

void extern_a(void) { *pa += 1; }
void touch_b(void)  { *pb += 1; }

void fig2(int n) {
	int i;
	int j;
	int k;
	int r;
	for (i = 0; i < n; i++) {          /* outer loop:  header "B1" */
		C = i;
		extern_a();                    /* references A ambiguously  */
		for (j = 0; j < n; j++) {      /* middle loop: header "B3" */
			B = j;
			touch_b();                 /* references B ambiguously  */
			for (k = 0; k < n; k++) {  /* inner loop:  header "B5" */
				r = A;                 /* explicit load of A        */
				C += r & 1;
			}
		}
	}
}

int main(void) {
	fig2(4);
	print_int(A);
	print_int(B);
	print_int(C);
	return 0;
}
