// Figure 3: pointer-based promotion of an array element whose address
// is loop-invariant. This example compiles the paper's Figure 3 code
// (B[i] accumulated over the inner loop) with scalar promotion alone
// and with §3.3 pointer-based promotion, and prints the IL of the
// inner loop in both versions so the rewrite is visible: the pLoad
// and pStore of B[i] become register copies, with one load in the
// landing pad and one store at the loop exit.
//
//	go run ./examples/figure3
package main

import (
	"fmt"
	"log"
	"strings"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

// The paper's Figure 3, almost verbatim (DIM_X=DIM_Y=64).
const src = `
int A[64][64];
int B[64];

int main(void) {
	int i;
	int j;
	for (i = 0; i < 64; i++)
		for (j = 0; j < 64; j++)
			A[i][j] = i + j;
	for (i = 0; i < 64; i++) {
		B[i] = 0;
		for (j = 0; j < 64; j++) {
			B[i] += A[i][j];
		}
	}
	print_int(B[0]);
	print_int(B[63]);
	return 0;
}
`

func compile(pointer bool) (*driver.Compilation, *interp.Result) {
	cfg := driver.Config{Analysis: driver.PointsTo, Promote: true, PointerPromote: pointer}
	c, err := driver.CompileSource("figure3.c", src, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Execute(interp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return c, res
}

func main() {
	scalarOnly, r1 := compile(false)
	withPointer, r2 := compile(true)
	if r1.Output != r2.Output {
		log.Fatalf("outputs differ: %q vs %q", r1.Output, r2.Output)
	}

	fmt.Println("Inner loop, scalar promotion only (B[i] stays in memory):")
	printHotBlock(scalarOnly)
	fmt.Println()
	fmt.Println("Inner loop, with §3.3 pointer-based promotion (B[i] -> rb):")
	printHotBlock(withPointer)

	fmt.Println()
	fmt.Printf("%-18s %10s %10s\n", "", "scalar", "+pointer")
	fmt.Printf("%-18s %10d %10d\n", "total operations", r1.Counts.Ops, r2.Counts.Ops)
	fmt.Printf("%-18s %10d %10d\n", "loads", r1.Counts.Loads, r2.Counts.Loads)
	fmt.Printf("%-18s %10d %10d\n", "stores", r1.Counts.Stores, r2.Counts.Stores)
	fmt.Printf("pointer promotions performed: %d\n", withPointer.Promote.PointerPromotions)
}

// printHotBlock prints the block containing the accumulation (the one
// loading A's elements), which is the body of the inner loop.
func printHotBlock(c *driver.Compilation) {
	fn := c.Module.Funcs["main"]
	listing := ir.FormatFunc(fn, &c.Module.Tags)
	// Show the block that references tag A via pLoad: the inner body.
	blocks := strings.Split(listing, "\n")
	printing := false
	var body []string
	for _, line := range blocks {
		if strings.HasSuffix(line, ":") || strings.Contains(line, ":  ;") {
			if printing {
				break
			}
			body = body[:0]
			body = append(body, line)
			continue
		}
		body = append(body, line)
		if strings.Contains(line, "pLoad [A]") {
			printing = true
		}
	}
	if !printing {
		fmt.Println("  (no block loads A — fully optimized away)")
		return
	}
	for _, l := range body {
		fmt.Println(l)
	}
}
