// Precision: the paper's §5 fft fragment, where promotion needs
// points-to analysis. T1 is an address-taken global and the loop
// stores through a pointer parameter; MOD/REF alone must assume those
// stores can modify T1, so T1 stays in memory. Points-to analysis
// proves the pointer only reaches the output array, and T1 promotes.
//
// The example compiles the fragment under both analyses, reports the
// tag set of the stores through the pointer, and shows the resulting
// dynamic counts.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/ir"
)

const src = `
int T1;
int X1[256];
int X2[256];

void seed(int *p) { *p = 3; }

void kernel(int *x2, int n) {
	int i;
	for (i = 0; i < n; i++) {
		T1 = (T1 * 5 + X1[i & 255]) & 65535;
		x2[i & 255] = T1;
	}
}

int main(void) {
	int i;
	int check;
	for (i = 0; i < 256; i++) X1[i] = i * 7;
	seed(&T1);
	kernel(X2, 4096);
	check = T1;
	for (i = 0; i < 256; i++) check = (check * 31 + X2[i]) & 1048575;
	print_int(check);
	return 0;
}
`

func main() {
	for _, analysis := range []driver.Analysis{driver.ModRef, driver.PointsTo} {
		c, err := driver.CompileSource("precision.c", src,
			driver.Config{Analysis: analysis, Promote: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Execute(interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analysis=%-8s promotions=%d ops=%d loads=%d stores=%d  output=%s",
			analysis, c.Promote.ScalarPromotions,
			res.Counts.Ops, res.Counts.Loads, res.Counts.Stores, res.Output)

		// Show what the store through x2 may touch under this
		// analysis: the whole addressed world for MOD/REF, just the
		// array for points-to.
		kernel := c.Module.Funcs["kernel"]
		for _, b := range kernel.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpPStore {
					fmt.Printf("  store through x2 may modify: %s\n",
						in.Tags.Format(&c.Module.Tags))
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("Under MOD/REF the store through x2 may touch T1 (it is")
	fmt.Println("address-taken), so T1 cannot be promoted in the loop; the")
	fmt.Println("points-to analysis pins the pointer to X2 and unlocks it —")
	fmt.Println("the paper's fft example (§5), reduced to its skeleton.")
}
