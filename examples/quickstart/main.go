// Quickstart: compile a small C program with and without register
// promotion, run both in the instrumented interpreter, and print the
// memory-traffic difference — the paper's experiment in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
)

const src = `
int total;
int calls;

void audit(int v) {
	calls++;
}

int main(void) {
	int i;
	for (i = 0; i < 10000; i++) {
		total += i;          /* explicit global reference in a loop */
		if (i % 100 == 0) {
			audit(total);    /* the call does not touch total */
		}
	}
	print_int(total);
	return 0;
}
`

func run(cfg driver.Config) (*interp.Result, error) {
	c, err := driver.CompileSource("quickstart.c", src, cfg)
	if err != nil {
		return nil, err
	}
	return c.Execute(interp.Options{})
}

func main() {
	without, err := run(driver.Config{Analysis: driver.ModRef})
	if err != nil {
		log.Fatal(err)
	}
	with, err := run(driver.Config{Analysis: driver.ModRef, Promote: true})
	if err != nil {
		log.Fatal(err)
	}

	if without.Output != with.Output {
		log.Fatalf("outputs differ: %q vs %q", without.Output, with.Output)
	}
	fmt.Printf("program output:       %s", with.Output)
	fmt.Printf("%-22s %12s %12s %12s\n", "", "without", "with", "% removed")
	rowi := func(name string, a, b int64) {
		pct := 0.0
		if a != 0 {
			pct = 100 * float64(a-b) / float64(a)
		}
		fmt.Printf("%-22s %12d %12d %11.2f%%\n", name, a, b, pct)
	}
	rowi("total operations", without.Counts.Ops, with.Counts.Ops)
	rowi("loads executed", without.Counts.Loads, with.Counts.Loads)
	rowi("stores executed", without.Counts.Stores, with.Counts.Stores)
	fmt.Println()
	fmt.Println("The accumulator `total` lives in memory because the compiler")
	fmt.Println("cannot prove the call to audit() leaves it alone — until the")
	fmt.Println("interprocedural MOD/REF analysis shows it does, and register")
	fmt.Println("promotion keeps `total` in a register for the whole loop.")
}
