// Pressure: sweep the physical register supply K and watch register
// promotion's benefit erode as the allocator is forced to spill — the
// §5 water phenomenon as a curve. For large K promotion wins cleanly;
// as K shrinks the promoted values (and their neighbours) spill, and
// the memory traffic comes back.
//
//	go run ./examples/pressure
package main

import (
	"fmt"
	"log"
	"strings"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
)

// A condensed water: sixteen global accumulators hot in one loop.
func source() string {
	var sb strings.Builder
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "int v%02d;\n", i)
	}
	sb.WriteString("int data[64];\nint main(void) {\n\tint i;\n\tint t;\n")
	sb.WriteString("\tfor (i = 0; i < 64; i++) data[i] = i * 3;\n")
	sb.WriteString("\tfor (i = 0; i < 20000; i++) {\n\t\tt = data[i & 63];\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "\t\tv%02d = (v%02d + t + %d) & 65535;\n", i, i, i)
	}
	sb.WriteString("\t}\n")
	sb.WriteString("\tt = 0;\n")
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&sb, "\tt ^= v%02d;\n", i)
	}
	sb.WriteString("\tprint_int(t);\n\treturn 0;\n}\n")
	return sb.String()
}

func main() {
	src := source()
	fmt.Printf("%4s %12s %12s %12s %10s %8s\n",
		"K", "ops w/o", "ops with", "removed", "% removed", "spilled")
	for _, k := range []int{8, 12, 16, 20, 24, 32, 64} {
		base, err := driver.CompileSource("pressure.c", src,
			driver.Config{Analysis: driver.ModRef, K: k})
		if err != nil {
			log.Fatal(err)
		}
		baseRes, err := base.Execute(interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		promo, err := driver.CompileSource("pressure.c", src,
			driver.Config{Analysis: driver.ModRef, Promote: true, K: k})
		if err != nil {
			log.Fatal(err)
		}
		promoRes, err := promo.Execute(interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if promoRes.Output != baseRes.Output {
			log.Fatalf("K=%d: outputs differ", k)
		}
		removed := baseRes.Counts.Ops - promoRes.Counts.Ops
		fmt.Printf("%4d %12d %12d %12d %9.2f%% %8d\n",
			k, baseRes.Counts.Ops, promoRes.Counts.Ops, removed,
			100*float64(removed)/float64(baseRes.Counts.Ops), promo.Alloc.Spilled)
	}
	fmt.Println()
	fmt.Println("Promotion's benefit depends on registers actually being")
	fmt.Println("available: with a large file the sixteen accumulators stay")
	fmt.Println("enregistered; squeeze K and the allocator sends them (and")
	fmt.Println("their neighbours) back to memory as spill code.")
}
