// Command rpexec compiles a C source file and runs it in the
// instrumented interpreter, reporting the program's output, exit code,
// and dynamic operation counts — the measurement the paper's Figures
// 5–7 are built from.
//
// Usage:
//
//	rpexec [flags] file.c
//
// It accepts the same configuration flags as rpcc, plus -profile,
// which prints an execution profile: the hottest basic blocks by
// execution count and the per-tag dynamic memory traffic (-top bounds
// both lists). -sanitize runs the program under the analysis-soundness
// sanitizer: every memory access is diffed against the static MOD/REF
// and points-to sets, and any access outside them is reported with
// function/block/instruction provenance (exit status 1). -certify
// re-proves every promotion certificate with the independent
// region-soundness verifier right after promotion; a refuted
// certificate fails the compile. -engine
// selects the execution engine: flat (the pre-lowered default),
// switch (the block-walking reference), or native (the program
// compiled to machine code via generated Go); all three produce
// identical counts, output, and error text, so the choice only
// changes wall time. -native-backend picks how native artifacts
// execute (auto probes in-process plugin loading and falls back to a
// subprocess exec); -nocounts runs the native engine without
// instrumentation, reporting zero counts in exchange for the fastest
// possible run.
// -cpuprofile writes a Go pprof profile of the whole compile+run, for
// profiling the measurement loop itself. -trace-out writes the
// compile and execute spans as Chrome trace_event JSON, and -metrics
// enables the process-wide metrics registry and prints its snapshot
// after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/native"
	"regpromo/internal/obs"
)

func main() {
	analysis := flag.String("analysis", "modref", "interprocedural analysis: modref or pointer")
	promote := flag.Bool("promote", false, "enable scalar register promotion")
	pointerPromo := flag.Bool("pointerpromo", false, "enable pointer-based promotion (§3.3)")
	noopt := flag.Bool("noopt", false, "disable classical optimizations")
	noalloc := flag.Bool("noalloc", false, "skip register allocation")
	k := flag.Int("k", 0, "physical register count (0 = default 32)")
	throttle := flag.Int("throttle", 0, "promotion pressure limit (0 = unthrottled, §3.4 bin-packing)")
	dseFlag := flag.Bool("dse", false, "enable tag-based dead-store elimination (§3.4 extension)")
	maxSteps := flag.Int64("maxsteps", 1<<33, "interpreter step limit")
	quiet := flag.Bool("q", false, "suppress program output, print only counts")
	profile := flag.Bool("profile", false, "collect and print a hot-spot profile")
	top := flag.Int("top", 10, "profile list length (with -profile)")
	engineName := flag.String("engine", "flat", "execution engine: flat, switch, or native")
	nativeBackend := flag.String("native-backend", "", `native artifact execution: "auto", "plugin", or "subprocess"`)
	noCounts := flag.Bool("nocounts", false, "native engine only: skip instrumentation (counts report zero)")
	sanitize := flag.Bool("sanitize", false, "diff observed memory behaviour against the static analyses")
	certify := flag.Bool("certify", false, "re-prove promotion certificates with the region-soundness verifier")
	cpuprofile := flag.String("cpuprofile", "", "write a Go CPU profile of the compile+run to this file")
	traceOut := flag.String("trace-out", "", "write compile+execute spans as Chrome trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "enable the metrics registry and print its snapshot after the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpexec [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpexec:", err)
		os.Exit(1)
	}

	cfg := driver.Config{
		Promote:        *promote || *pointerPromo,
		PointerPromote: *pointerPromo,
		DisableOpt:     *noopt,
		NoAlloc:        *noalloc,
		K:              *k,
		Throttle:       *throttle,
		DSE:            *dseFlag,
		Certify:        *certify,
	}
	switch *analysis {
	case "modref":
		cfg.Analysis = driver.ModRef
	case "pointer":
		cfg.Analysis = driver.PointsTo
	default:
		fmt.Fprintf(os.Stderr, "rpexec: unknown analysis %q\n", *analysis)
		os.Exit(2)
	}

	engine, err := driver.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpexec:", err)
		os.Exit(2)
	}
	if *nativeBackend != "" {
		b, err := native.ParseBackend(*nativeBackend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpexec:", err)
			os.Exit(2)
		}
		native.SetDefaultBackend(b)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpexec:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rpexec:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *metrics {
		obs.EnableMetrics()
	}
	var pipe *obs.Pipeline
	if *traceOut != "" {
		pipe = &obs.Pipeline{Tracer: obs.NewTracer()}
	}
	c, err := driver.Compile(path, string(src), cfg, pipe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpexec:", err)
		os.Exit(1)
	}
	esp := pipe.StartSpan("execute", "interp", 0).Label("engine", engine.String())
	res, err := c.Execute(interp.Options{MaxSteps: *maxSteps, Profile: *profile, Engine: engine, Sanitize: *sanitize, NoCounts: *noCounts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpexec:", err)
		os.Exit(1)
	}
	esp.Arg("ops", res.Counts.Ops).Arg("loads", res.Counts.Loads).Arg("stores", res.Counts.Stores).End()
	if *traceOut != "" {
		if err := writeTrace(*traceOut, pipe.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "rpexec:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		fmt.Print(res.Output)
	}
	fmt.Printf("exit=%d ops=%d loads=%d stores=%d copies=%d calls=%d\n",
		res.Exit, res.Counts.Ops, res.Counts.Loads, res.Counts.Stores,
		res.Counts.Copies, res.Counts.Calls)
	if res.Profile != nil {
		fmt.Print(res.Profile.Format(*top))
	}
	if *metrics {
		fmt.Print(obs.Metrics().Snapshot().Format())
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "rpexec: sanitizer: %d violation(s):\n", len(res.Violations))
		for _, d := range res.Violations {
			fmt.Fprintln(os.Stderr, " ", d)
		}
		os.Exit(1)
	}
}

// writeTrace writes the collected span tree as Chrome trace_event
// JSON to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
