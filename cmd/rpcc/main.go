// Command rpcc compiles a C source file through the register-promotion
// pipeline and prints the resulting IL, per-pass statistics, or both.
//
// Usage:
//
//	rpcc [flags] file.c
//
//	-analysis modref|pointer   interprocedural analysis (default modref)
//	-promote                   enable scalar register promotion
//	-pointerpromo              also enable §3.3 pointer-based promotion
//	-noopt                     disable the classical optimization passes
//	-noalloc                   skip register allocation
//	-k N                       physical register count (default 32)
//	-dump                      print the final IL
//	-stats                     print promotion/allocation statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regpromo/internal/driver"
	"regpromo/internal/ir"
)

func main() {
	analysis := flag.String("analysis", "modref", "interprocedural analysis: modref or pointer")
	promote := flag.Bool("promote", false, "enable scalar register promotion")
	pointerPromo := flag.Bool("pointerpromo", false, "enable pointer-based promotion (§3.3)")
	noopt := flag.Bool("noopt", false, "disable classical optimizations")
	noalloc := flag.Bool("noalloc", false, "skip register allocation")
	k := flag.Int("k", 0, "physical register count (0 = default 32)")
	throttle := flag.Int("throttle", 0, "promotion pressure limit (0 = unthrottled, §3.4 bin-packing)")
	dseFlag := flag.Bool("dse", false, "enable tag-based dead-store elimination (§3.4 extension)")
	dump := flag.Bool("dump", false, "print the final IL")
	dot := flag.String("dot", "", "emit the named function's CFG as Graphviz dot")
	stats := flag.Bool("stats", false, "print pass statistics")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpcc [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcc:", err)
		os.Exit(1)
	}

	cfg := driver.Config{
		Promote:        *promote || *pointerPromo,
		PointerPromote: *pointerPromo,
		DisableOpt:     *noopt,
		NoAlloc:        *noalloc,
		K:              *k,
		Throttle:       *throttle,
		DSE:            *dseFlag,
	}
	switch *analysis {
	case "modref":
		cfg.Analysis = driver.ModRef
	case "pointer":
		cfg.Analysis = driver.PointsTo
	default:
		fmt.Fprintf(os.Stderr, "rpcc: unknown analysis %q (want modref or pointer)\n", *analysis)
		os.Exit(2)
	}

	c, err := driver.CompileSource(path, string(src), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcc:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("promotions: scalar=%d pointer=%d refs-rewritten=%d lifted-loads=%d lifted-stores=%d\n",
			c.Promote.ScalarPromotions, c.Promote.PointerPromotions,
			c.Promote.RefsRewritten, c.Promote.LoadsInserted, c.Promote.StoresInserted)
		fmt.Printf("allocation: spilled=%d spill-loads=%d spill-stores=%d coalesced=%d rounds=%d\n",
			c.Alloc.Spilled, c.Alloc.SpillLoads, c.Alloc.SpillStores,
			c.Alloc.Coalesced, c.Alloc.Rounds)
	}
	if *dot != "" {
		fn, ok := c.Module.Funcs[*dot]
		if !ok {
			fmt.Fprintf(os.Stderr, "rpcc: no function %q\n", *dot)
			os.Exit(1)
		}
		printDot(fn, c.Module)
		return
	}
	if *dump || !*stats {
		fmt.Print(ir.FormatModule(c.Module))
	}
}

// printDot writes a Graphviz digraph of fn's CFG with instruction
// listings in the node labels.
func printDot(fn *ir.Func, m *ir.Module) {
	fmt.Printf("digraph %q {\n", fn.Name)
	fmt.Println("\tnode [shape=box, fontname=\"monospace\"];")
	for _, b := range fn.Blocks {
		var label strings.Builder
		fmt.Fprintf(&label, "%s\\l", b.Label)
		for i := range b.Instrs {
			text := ir.FormatInstr(&b.Instrs[i], &m.Tags, b)
			text = strings.ReplaceAll(text, "\"", "'")
			fmt.Fprintf(&label, "  %s\\l", text)
		}
		fmt.Printf("\t%q [label=\"%s\"];\n", b.Label, label.String())
		for _, s := range b.Succs {
			fmt.Printf("\t%q -> %q;\n", b.Label, s.Label)
		}
	}
	fmt.Println("}")
}
