// Command rpcc compiles a C source file through the register-promotion
// pipeline and prints the resulting IL, per-pass telemetry, or both.
//
// Usage:
//
//	rpcc [flags] file.c
//
//	-analysis modref|pointer   interprocedural analysis (default modref)
//	-promote                   enable scalar register promotion
//	-pointerpromo              also enable §3.3 pointer-based promotion
//	-noopt                     disable the classical optimization passes
//	-noalloc                   skip register allocation
//	-k N                       physical register count (default 32)
//	-dump                      print the final IL
//	-stats                     print only the statistics footer, no IL
//	-trace                     print the per-pass trace table (wall time
//	                           and static IR deltas per pass)
//	-dump-ir pass|all          print the IL after the named pass (or
//	                           after every pass)
//	-json                      emit the whole compilation record — pass
//	                           events, promotion and allocation
//	                           statistics — as one JSON object
//	-trace-out FILE            write the compile's hierarchical span
//	                           tree (compile → passes → per-function
//	                           middle-end work items on their workers →
//	                           analysis fixpoints) as Chrome
//	                           trace_event JSON; open the file in
//	                           about:tracing or ui.perfetto.dev
//	-check SPEC                run the internal/check lint passes:
//	                           "module" runs the full registry once
//	                           after the pipeline, "pass" after the
//	                           front end and after every pass
//	                           (pinpoints the first pass that breaks
//	                           an invariant), and a comma list of pass
//	                           names (e.g. "uninit,promoted" or
//	                           "certify,pressure") runs exactly those
//	                           at the module boundary
//	-certify                   re-prove every promotion certificate
//	                           with the independent region-soundness
//	                           verifier right after promotion
//
// The promotion and allocation summaries always follow the IL as
// ";"-prefixed comment lines, so downstream IL consumers can skip them.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"regpromo/internal/driver"
	"regpromo/internal/ir"
	"regpromo/internal/obs"
	"regpromo/internal/opt/promote"
	"regpromo/internal/regalloc"
)

func main() {
	analysis := flag.String("analysis", "modref", "interprocedural analysis: modref or pointer")
	promoteFlag := flag.Bool("promote", false, "enable scalar register promotion")
	pointerPromo := flag.Bool("pointerpromo", false, "enable pointer-based promotion (§3.3)")
	noopt := flag.Bool("noopt", false, "disable classical optimizations")
	noalloc := flag.Bool("noalloc", false, "skip register allocation")
	k := flag.Int("k", 0, "physical register count (0 = default 32)")
	throttle := flag.Int("throttle", 0, "promotion pressure limit (0 = unthrottled, §3.4 bin-packing)")
	dseFlag := flag.Bool("dse", false, "enable tag-based dead-store elimination (§3.4 extension)")
	dump := flag.Bool("dump", false, "print the final IL")
	dot := flag.String("dot", "", "emit the named function's CFG as Graphviz dot")
	stats := flag.Bool("stats", false, "print only the statistics footer, no IL")
	trace := flag.Bool("trace", false, "print the per-pass trace table")
	dumpIR := flag.String("dump-ir", "", "print the IL after the named pass (\"all\" = every pass)")
	jsonOut := flag.Bool("json", false, "emit the compilation record as JSON")
	traceOut := flag.String("trace-out", "", "write the compile's span tree as Chrome trace_event JSON to this file")
	checkFlag := flag.String("check", "off", `IL checker: "off", "module", "pass", or a comma list of lint-pass names`)
	certifyFlag := flag.Bool("certify", false, "re-prove promotion certificates with the region-soundness verifier")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpcc [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcc:", err)
		os.Exit(1)
	}

	cfg := driver.Config{
		Promote:        *promoteFlag || *pointerPromo,
		PointerPromote: *pointerPromo,
		DisableOpt:     *noopt,
		NoAlloc:        *noalloc,
		K:              *k,
		Throttle:       *throttle,
		DSE:            *dseFlag,
	}
	switch *analysis {
	case "modref":
		cfg.Analysis = driver.ModRef
	case "pointer":
		cfg.Analysis = driver.PointsTo
	default:
		fmt.Fprintf(os.Stderr, "rpcc: unknown analysis %q (want modref or pointer)\n", *analysis)
		os.Exit(2)
	}
	level, checkPasses, err := driver.ParseCheck(*checkFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpcc:", err)
		os.Exit(2)
	}
	cfg.Check = level
	cfg.CheckPasses = checkPasses
	cfg.Certify = *certifyFlag

	// Observe the pipeline whenever any telemetry output was asked for.
	var pipe *obs.Pipeline
	if *trace || *dumpIR != "" || *jsonOut || *traceOut != "" {
		pipe = &obs.Pipeline{DumpPass: *dumpIR}
	}
	if *traceOut != "" {
		pipe.Tracer = obs.NewTracer()
	}
	c, err := driver.Compile(path, string(src), cfg, pipe)
	if err != nil {
		var ce *driver.CheckError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "rpcc: %d check failure(s) after %s:\n", len(ce.Diags), ce.Pass)
			for _, d := range ce.Diags {
				fmt.Fprintln(os.Stderr, " ", d)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rpcc:", err)
		os.Exit(1)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, pipe.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "rpcc:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		if err := writeJSON(path, cfg, c, pipe); err != nil {
			fmt.Fprintln(os.Stderr, "rpcc:", err)
			os.Exit(1)
		}
		return
	}
	if *dot != "" {
		fn, ok := c.Module.Funcs[*dot]
		if !ok {
			fmt.Fprintf(os.Stderr, "rpcc: no function %q\n", *dot)
			os.Exit(1)
		}
		printDot(fn, c.Module)
		return
	}
	if *trace {
		fmt.Print(pipe.FormatTable())
	}
	if *dumpIR != "" {
		dumped := 0
		for _, e := range pipe.Events {
			if e.IRDump == "" {
				continue
			}
			fmt.Printf(";; IL after pass %d (%s)\n%s\n", e.Index, e.Name, e.IRDump)
			dumped++
		}
		if dumped == 0 {
			fmt.Fprintf(os.Stderr, "rpcc: -dump-ir: no pass named %q ran (passes: %s)\n",
				*dumpIR, strings.Join(pipe.PassNames(), " "))
			os.Exit(2)
		}
	}
	if *dump || (!*stats && !*trace && *dumpIR == "") {
		fmt.Print(ir.FormatModule(c.Module))
	}
	printFooter(c)
}

// printFooter summarizes the promotion and allocation statistics that
// the compilation recorded, as IL comment lines.
func printFooter(c *driver.Compilation) {
	fmt.Printf("; promotions: scalar=%d pointer=%d refs-rewritten=%d lifted-loads=%d lifted-stores=%d\n",
		c.Promote.ScalarPromotions, c.Promote.PointerPromotions,
		c.Promote.RefsRewritten, c.Promote.LoadsInserted, c.Promote.StoresInserted)
	fmt.Printf("; allocation: spilled=%d spill-loads=%d spill-stores=%d coalesced=%d rounds=%d max-live=%d\n",
		c.Alloc.Spilled, c.Alloc.SpillLoads, c.Alloc.SpillStores,
		c.Alloc.Coalesced, c.Alloc.Rounds, c.Alloc.MaxLive)
}

// record is the -json output shape: one compilation, fully described.
type record struct {
	File     string           `json:"file"`
	Analysis string           `json:"analysis"`
	Promote  bool             `json:"promote"`
	Passes   []*obs.PassEvent `json:"passes"`
	Stats    struct {
		Promote promote.Stats  `json:"promote"`
		Alloc   regalloc.Stats `json:"alloc"`
	} `json:"stats"`
}

// writeTrace writes the collected span tree as Chrome trace_event
// JSON to path.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(path string, cfg driver.Config, c *driver.Compilation, pipe *obs.Pipeline) error {
	rec := record{
		File:     path,
		Analysis: cfg.Analysis.String(),
		Promote:  cfg.Promote,
		Passes:   pipe.Events,
	}
	rec.Stats.Promote = c.Promote
	rec.Stats.Alloc = c.Alloc
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// printDot writes a Graphviz digraph of fn's CFG with instruction
// listings in the node labels.
func printDot(fn *ir.Func, m *ir.Module) {
	fmt.Printf("digraph %q {\n", fn.Name)
	fmt.Println("\tnode [shape=box, fontname=\"monospace\"];")
	for _, b := range fn.Blocks {
		var label strings.Builder
		fmt.Fprintf(&label, "%s\\l", b.Label)
		for i := range b.Instrs {
			text := ir.FormatInstr(&b.Instrs[i], &m.Tags, b)
			text = strings.ReplaceAll(text, "\"", "'")
			fmt.Fprintf(&label, "  %s\\l", text)
		}
		fmt.Printf("\t%q [label=\"%s\"];\n", b.Label, label.String())
		for _, s := range b.Succs {
			fmt.Printf("\t%q -> %q;\n", b.Label, s.Label)
		}
	}
	fmt.Println("}")
}
