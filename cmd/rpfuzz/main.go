// Command rpfuzz differentially fuzzes the compiler: it generates
// deterministic, UB-free random C programs (internal/testgen),
// compiles each under every pipeline configuration the evaluation
// compares — the no-opt reference, the baseline optimizer, promotion
// under MOD/REF and points-to analysis, and the §3.3/§3.4 variants —
// runs them in the instrumented interpreter, and flags any
// disagreement in printed output or exit code as a miscompilation.
// Failing seeds are shrunk with a delta-debugging reducer and
// archived as self-contained repro artifacts.
//
// Usage:
//
//	rpfuzz [flags]
//
//	-seeds N      number of consecutive seeds to test (default 100)
//	-start S      first seed (default 1)
//	-parallel M   concurrent seeds (default: one per CPU)
//	-short        trim the matrix to the reference plus the paper's
//	              three measured pipelines (CI smoke runs)
//	-engines E    engine matrix: "flat" runs the default engine only;
//	              "both" adds the switch reference engine; "all" adds
//	              the switch and native engines; a comma list (e.g.
//	              "flat,native") selects engines individually. Every
//	              non-flat engine executes each compilation and any
//	              disagreement with the flat engine — output, exit,
//	              error text, dynamic counts — is a divergence, so a
//	              native run is a translation-validation check of the
//	              codegen on every seed
//	-native-backend B  how native artifacts execute: "auto" (probe
//	              plugin, fall back to subprocess), "plugin", or
//	              "subprocess"; the fuzzer defaults to subprocess
//	              because plugins can never be unloaded and a fuzz run
//	              builds one artifact per (seed, config)
//	-sanitize     additionally run every execution under the
//	              analysis-soundness sanitizer; a memory access outside
//	              the static MOD/REF or points-to sets is a divergence,
//	              archived like any other
//	-certify      additionally re-prove every promotion certificate with
//	              the independent region-soundness verifier on every
//	              compilation; a refuted certificate is a divergence,
//	              archived like any other
//	-noreduce     archive failures without shrinking them first
//	-incremental  run the incremental-compilation oracle instead: per
//	              seed, compile a one-unit-edited variant cold into a
//	              fresh analysis cache, recompile the full program warm
//	              against it (and the reverse direction), and fail
//	              unless the warm IL is byte-identical to an uncached
//	              compile — a stale replayed summary is a divergence
//	-corpus DIR   failure artifact directory (default difftest/corpus)
//	-progress N   print a progress line every N completed seeds
//	              (default 100; 0 disables)
//	-v            log each divergent seed as it is found
//
// Long runs are not silent: a progress line (seeds done, divergences,
// sanitizer violations, refuted certificates, elapsed, seeds/sec) goes
// to stderr every -progress seeds, and a matching summary line always
// ends the run.
//
// Exit status is 0 when every seed agrees under every configuration,
// 1 when any divergence was found, 2 on usage or I/O errors. Each
// failure is written to <corpus>/seed<N>/ as prog.c (generator
// output), reduced.c (minimal reproducer), il-<config>.txt (final IL
// per configuration), and repro.txt (divergence summary plus repro
// command).
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"regpromo/internal/difftest"
	"regpromo/internal/driver"
	"regpromo/internal/interp"
	"regpromo/internal/native"
)

func main() {
	seeds := flag.Int64("seeds", 100, "number of consecutive seeds to test")
	start := flag.Int64("start", 1, "first seed")
	parallel := flag.Int("parallel", 0, "concurrent seeds (0 = one per CPU)")
	short := flag.Bool("short", false, "trim the configuration matrix for smoke runs")
	noreduce := flag.Bool("noreduce", false, "skip delta-debugging reduction of failures")
	incremental := flag.Bool("incremental", false, "run the incremental-compilation oracle (warm-vs-scratch IL identity)")
	corpus := flag.String("corpus", "difftest/corpus", "failure artifact directory")
	engines := flag.String("engines", "flat", `engine matrix: "flat", "both", "all", or a comma list (e.g. "flat,native")`)
	nativeBackend := flag.String("native-backend", "", `native artifact execution: "auto", "plugin", or "subprocess" (default subprocess)`)
	sanitize := flag.Bool("sanitize", false, "run executions under the analysis-soundness sanitizer")
	certify := flag.Bool("certify", false, "re-prove promotion certificates with the region-soundness verifier")
	progressEvery := flag.Int64("progress", 100, "print a progress line every N completed seeds (0 = off)")
	verbose := flag.Bool("v", false, "log each divergence as it is found")
	flag.Parse()
	if *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "rpfuzz: -seeds must be positive")
		os.Exit(2)
	}
	matrix, err := driver.ParseEngines(*engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpfuzz:", err)
		os.Exit(2)
	}
	hasNative := false
	for _, e := range matrix {
		if e == interp.EngineNative {
			hasNative = true
		}
	}
	switch {
	case *nativeBackend != "":
		b, err := native.ParseBackend(*nativeBackend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpfuzz:", err)
			os.Exit(2)
		}
		native.SetDefaultBackend(b)
	case hasNative:
		// Unless overridden, fuzzing forces the subprocess backend:
		// every (seed, config) pair builds a distinct artifact and
		// plugins can never be unloaded from the process.
		native.SetDefaultBackend(native.BackendSubprocess)
	}
	if *incremental {
		os.Exit(runIncremental(*start, *seeds, *parallel, *short, *corpus, *progressEvery, *verbose))
	}

	opts := difftest.FuzzOptions{
		Start:     *start,
		Seeds:     *seeds,
		Parallel:  *parallel,
		Short:     *short,
		Engines:   matrix,
		Sanitize:  *sanitize,
		Certify:   *certify,
		Reduce:    !*noreduce,
		CorpusDir: *corpus,
	}

	// Progress accounting shared by the (possibly parallel) seed
	// workers. Progress runs on worker goroutines, so everything it
	// touches is atomic.
	began := time.Now()
	var done, diverged, sanitizerHits, certifyHits atomic.Int64
	opts.Progress = func(seed int64, div, san, cert bool) {
		n := done.Add(1)
		if div {
			diverged.Add(1)
			if *verbose {
				fmt.Fprintf(os.Stderr, "rpfuzz: seed %d diverges\n", seed)
			}
		}
		if san {
			sanitizerHits.Add(1)
		}
		if cert {
			certifyHits.Add(1)
		}
		if *progressEvery > 0 && n%*progressEvery == 0 {
			fmt.Fprintf(os.Stderr, "rpfuzz: %s\n",
				statusLine(n, *seeds, diverged.Load(), sanitizerHits.Load(), certifyHits.Load(), time.Since(began)))
		}
	}

	report, err := difftest.Fuzz(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpfuzz:", err)
		os.Exit(2)
	}
	fmt.Printf("rpfuzz: seeds [%d, %d) × %d configs: %s\n",
		*start, *start+*seeds, len(report.Matrix),
		statusLine(done.Load(), *seeds, diverged.Load(), sanitizerHits.Load(), certifyHits.Load(), time.Since(began)))
	if len(report.Failures) == 0 {
		return
	}
	for _, f := range report.Failures {
		fmt.Printf("\nseed %d (reduced to %d units) — artifacts in %s\n%s",
			f.Seed, f.Units, f.Dir, indent(f.Divergence))
	}
	os.Exit(1)
}

// runIncremental drives the incremental-compilation oracle
// (difftest.FuzzIncremental) and returns the process exit status:
// 0 when every warm compile was byte-identical to scratch, 1 when any
// seed diverged, 2 on infrastructure errors.
func runIncremental(start, seeds int64, parallel int, short bool, corpus string, progressEvery int64, verbose bool) int {
	began := time.Now()
	var done, diverged atomic.Int64
	opts := difftest.IncrementalOptions{
		Start:     start,
		Seeds:     seeds,
		Parallel:  parallel,
		Short:     short,
		CorpusDir: corpus,
		Progress: func(seed int64, div bool) {
			n := done.Add(1)
			if div {
				diverged.Add(1)
				if verbose {
					fmt.Fprintf(os.Stderr, "rpfuzz: seed %d incremental compile diverges\n", seed)
				}
			}
			if progressEvery > 0 && n%progressEvery == 0 {
				fmt.Fprintf(os.Stderr, "rpfuzz: incremental %s\n",
					statusLine(n, seeds, diverged.Load(), 0, 0, time.Since(began)))
			}
		},
	}
	report, err := difftest.FuzzIncremental(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpfuzz:", err)
		return 2
	}
	fmt.Printf("rpfuzz: incremental oracle, seeds [%d, %d) × %d configs × 2 directions: %s\n",
		start, start+seeds, len(report.Matrix),
		statusLine(done.Load(), seeds, diverged.Load(), 0, 0, time.Since(began)))
	if len(report.Failures) == 0 {
		return 0
	}
	for _, f := range report.Failures {
		fmt.Printf("\nseed %d — artifacts in %s\n%s", f.Seed, f.Dir, indent(f.Divergence))
	}
	return 1
}

// statusLine renders the shared progress/summary form: seeds done,
// divergences, sanitizer violations, refuted certificates, elapsed
// wall time, seeds/sec.
func statusLine(done, total, diverged, sanitizer, certify int64, elapsed time.Duration) string {
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(done) / secs
	}
	return fmt.Sprintf("%d/%d seeds, %d divergences (%d sanitizer, %d certify), %.1fs elapsed, %.1f seeds/sec",
		done, total, diverged, sanitizer, certify, elapsed.Seconds(), rate)
}

func indent(s string) string {
	var out string
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
