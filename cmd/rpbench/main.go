// Command rpbench regenerates the paper's evaluation tables over the
// packaged benchmark suite.
//
// Usage:
//
//	rpbench -list            print the Figure 4 program table
//	rpbench                  print Figures 5, 6, and 7, plus Figure 8
//	                         (this reproduction's weighted-cycles
//	                         extension)
//	rpbench -figure 6        print one figure (5=ops, 6=stores,
//	                         7=loads, 8=weighted cycles)
//	rpbench -parallel N      measure up to N programs concurrently
//	                         (0 = one per CPU); results are assembled
//	                         in suite order, so the tables are
//	                         identical to a serial run's
//	rpbench -pointerpromo    rerun the matrix with §3.3 pointer-based
//	                         promotion enabled and report the delta it
//	                         adds over scalar promotion (§3.3 study)
//	rpbench -programs a,b,c  restrict to named programs
//	-k N                     physical register count (default 32)
//	-engine E                execution engine(s): flat, switch, native,
//	                         both, all, or a comma list (default flat;
//	                         counts are engine-independent, only wall
//	                         time changes). With -json, each engine gets
//	                         its own timed execution cell per config in
//	                         one report, and a native-over-flat speedup
//	                         summary prints when both are listed; table
//	                         output uses the first engine
//	-native-backend B        native artifact execution: auto (probe
//	                         plugin, fall back to subprocess), plugin,
//	                         or subprocess
//	-markdown                emit Markdown tables (for EXPERIMENTS.md)
//	rpbench -json            run the observed matrix and write the full
//	                         machine-readable report — dynamic counts
//	                         for all four configurations plus per-pass
//	                         wall time and IR deltas per program — to a
//	                         versioned BENCH_<timestamp>.json file
//	-out path                destination for -json ("-" = stdout)
//	rpbench -compare A[,B]   diff two benchmark reports and print the
//	                         regression/improvement table: with one
//	                         path, A is compared against the newest
//	                         other BENCH_*.json baseline; with two,
//	                         B is compared against A. Exits 1 when a
//	                         deterministic metric (dynamic ops, loads,
//	                         stores, promotions, spills) regressed past
//	                         -threshold; wall-time and process-metric
//	                         deltas are reported but never gate.
//	rpbench -trend           print the accumulated BENCH_*.json history
//	                         (one line per report with headline totals)
//	                         and gate on the two newest reports
//	-threshold P             gating percentage for -compare and -trend
//	                         (default 1.0)
//	rpbench -tier scale      run the incremental-analysis scale tier:
//	                         generate a ~1000-function module, compile
//	                         it cold with a fresh analysis cache, then
//	                         recompile a one-function-edited variant
//	                         warm against the same cache, and report
//	                         cold vs warm analysis time, solved vs
//	                         cached SCC counts, and whether the warm IL
//	                         is byte-identical to an uncached compile.
//	                         With -json the scale cell is written as a
//	                         schema-4 report (gated by -compare like any
//	                         other report).
//	-scale-funcs N           scale-tier module size in helper functions
//	                         (default 1000; CI smoke uses less)
//	-scale-seed S            scale-tier generation seed (default 1)
//	-scale-edit I            helper index edited for the warm recompile
//	                         (default: the middle helper)
//	-scale-exec              also execute the compiled modules and check
//	                         warm and uncached runs agree
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regpromo/internal/bench"
	"regpromo/internal/driver"
	"regpromo/internal/native"
	"regpromo/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "print the Figure 4 program table")
	figure := flag.Int("figure", 0, "print only one figure: 5, 6, or 7")
	pointer := flag.Bool("pointerpromo", false, "measure §3.3 pointer-based promotion against scalar promotion")
	programs := flag.String("programs", "", "comma-separated program subset")
	k := flag.Int("k", 0, "physical register count (0 = default)")
	certify := flag.Bool("certify", false, "re-prove promotion certificates during every measurement compile")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	jsonOut := flag.Bool("json", false, "write the observed benchmark report as BENCH_<timestamp>.json")
	out := flag.String("out", "", "output path for -json (default BENCH_<timestamp>.json, \"-\" = stdout)")
	parallel := flag.Int("parallel", 1, "programs measured concurrently (0 = one per CPU, 1 = serial)")
	engineName := flag.String("engine", "flat", "execution engine(s): flat, switch, native, both, all, or a comma list")
	nativeBackend := flag.String("native-backend", "", `native artifact execution: "auto", "plugin", or "subprocess"`)
	compare := flag.String("compare", "", "diff reports: old.json,new.json (or one path vs the previous baseline)")
	trend := flag.Bool("trend", false, "print the BENCH_*.json history and gate on the newest pair")
	threshold := flag.Float64("threshold", 1.0, "regression gate percentage for -compare / -trend")
	tier := flag.String("tier", "", "extra bench tier: \"scale\" (incremental-analysis scale run)")
	scaleFuncs := flag.Int("scale-funcs", 1000, "scale tier: helper-function count")
	scaleSeed := flag.Int64("scale-seed", 1, "scale tier: generation seed")
	scaleEdit := flag.Int("scale-edit", -1, "scale tier: edited helper index (-1 = middle)")
	scaleExec := flag.Bool("scale-exec", false, "scale tier: execute the compiled modules too")
	flag.Parse()

	if *compare != "" {
		runCompare(*compare, *threshold)
		return
	}

	if *tier != "" {
		if *tier != "scale" {
			fmt.Fprintf(os.Stderr, "rpbench: unknown tier %q (only \"scale\")\n", *tier)
			os.Exit(2)
		}
		err := runScaleTier(bench.ScaleOptions{
			Seed:    *scaleSeed,
			Funcs:   *scaleFuncs,
			Edit:    *scaleEdit,
			Execute: *scaleExec,
		}, *jsonOut, *out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *trend {
		runTrend(*threshold)
		return
	}

	if *list {
		fmt.Print(bench.FormatFigure4())
		return
	}

	engines, err := driver.ParseEngines(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(2)
	}
	if *nativeBackend != "" {
		b, err := native.ParseBackend(*nativeBackend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(2)
		}
		native.SetDefaultBackend(b)
	}

	opts := bench.Options{K: *k, Certify: *certify, Parallel: *parallel, Engine: engines[0], Engines: engines}
	if *parallel == 0 {
		opts.Parallel = bench.DefaultWorkers()
	}
	if *programs != "" {
		opts.Programs = strings.Split(*programs, ",")
	}

	if *jsonOut {
		opts.PointerPromotion = *pointer
		if err := runJSON(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *pointer {
		if err := runPointerStudy(opts, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}

	fr, err := bench.RunFigures(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(1)
	}
	// Figures 5, 6, and 7 are the paper's; Figure 8 is this
	// reproduction's weighted-cycles extension (§5's latency remark,
	// quantified).
	metrics := map[int]bench.Metric{5: bench.TotalOps, 6: bench.Stores, 7: bench.Loads, 8: bench.WeightedCycles}
	if *figure != 0 {
		m, ok := metrics[*figure]
		if !ok {
			fmt.Fprintln(os.Stderr, "rpbench: -figure must be 5, 6, 7, or 8 (weighted cycles)")
			os.Exit(2)
		}
		printTable(*markdown, *figure, m, fr.Rows[m])
		return
	}
	for _, f := range []int{5, 6, 7, 8} {
		m := metrics[f]
		printTable(*markdown, f, m, fr.Rows[m])
		fmt.Println()
	}
}

// runJSON runs the observed measurement matrix and writes the
// versioned report. Timestamped filenames sort chronologically, so the
// newest file is the baseline bench.LatestBaseline picks up. Metrics
// are enabled so the report carries the process-wide snapshot
// (schema 3).
func runJSON(opts bench.Options, out string) error {
	obs.EnableMetrics()
	r, err := bench.CollectReport(opts)
	if err != nil {
		return err
	}
	path, err := writeReport(r, out)
	if err != nil {
		return err
	}
	if path != "" {
		fmt.Printf("wrote %s (%d programs, Figures 5, 6, and 7 plus the Figure 8 extension, schema %s)\n",
			path, len(r.Programs), r.Schema)
	}
	printNativeSpeedup(r)
	return nil
}

// printNativeSpeedup summarizes native-over-flat throughput per
// program when a multi-engine run measured both. Counts are identical
// across engines by the parity contract, so the dynamic-ops/sec ratio
// is the wall-time ratio; ops and durations are summed over the
// program's four configuration cells.
func printNativeSpeedup(r *bench.Report) {
	type agg struct{ ops, flatNS, nativeNS int64 }
	var rows []struct {
		name string
		agg
	}
	for i := range r.Programs {
		p := &r.Programs[i]
		var a agg
		for j := range p.Configs {
			c := &p.Configs[j]
			fe, okF := c.ExecFor("flat")
			ne, okN := c.ExecFor("native")
			if !okF || !okN {
				a = agg{}
				break
			}
			a.ops += c.Counts.Ops
			a.flatNS += fe.DurationNS
			a.nativeNS += ne.DurationNS
		}
		if a.flatNS > 0 && a.nativeNS > 0 {
			rows = append(rows, struct {
				name string
				agg
			}{p.Name, a})
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Println("\nnative vs flat throughput (dynamic ops/sec, summed over configs):")
	for _, row := range rows {
		flatRate := float64(row.ops) / (float64(row.flatNS) / 1e9)
		nativeRate := float64(row.ops) / (float64(row.nativeNS) / 1e9)
		fmt.Printf("  %-11s flat %10.1f Mops/s   native %10.1f Mops/s   speedup %6.1fx\n",
			row.name, flatRate/1e6, nativeRate/1e6, float64(row.flatNS)/float64(row.nativeNS))
	}
}

// writeReport stamps and writes a report to out ("-" = stdout, "" =
// a fresh BENCH_<timestamp>.json). It returns the path written, or ""
// for stdout.
func writeReport(r *bench.Report, out string) (string, error) {
	now := time.Now().UTC()
	r.Timestamp = now.Format(time.RFC3339)
	if out == "-" {
		return "", r.WriteJSON(os.Stdout)
	}
	var f *os.File
	var err error
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			return "", err
		}
	} else {
		// Default name: BENCH_<timestamp>.json, uniquified with an _N
		// suffix when two runs land in the same second — O_EXCL makes
		// the existence check and the create one atomic step, so
		// concurrent runs cannot silently overwrite each other. The _N
		// suffix sorts after the bare name, keeping LatestBaseline's
		// newest-by-name ordering correct.
		base := "BENCH_" + now.Format("20060102T150405")
		for n := 0; ; n++ {
			out = base + ".json"
			if n > 0 {
				out = fmt.Sprintf("%s_%d.json", base, n)
			}
			f, err = os.OpenFile(out, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
			if err == nil {
				break
			}
			if !os.IsExist(err) {
				return "", err
			}
		}
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return out, nil
}

// runScaleTier implements -tier scale: run the incremental-analysis
// scale tier and either print the human summary or write the scale
// cell as a schema-4 report.
func runScaleTier(o bench.ScaleOptions, jsonOut bool, out string) error {
	obs.EnableMetrics()
	sr, err := bench.RunScale(o)
	if err != nil {
		return err
	}
	if !sr.Identical {
		// The warm compile diverged from the uncached reference: the
		// numbers below are meaningless and the cache is unsound.
		return fmt.Errorf("scale tier: warm IL is NOT identical to the uncached compile (edit %s)", sr.EditedFunc)
	}
	if jsonOut {
		r := &bench.Report{Schema: bench.SchemaVersion, MemLatency: bench.MemLatency, Scale: sr}
		if reg := obs.Metrics(); reg != nil {
			r.Metrics = reg.Snapshot()
		}
		path, err := writeReport(r, out)
		if err != nil {
			return err
		}
		if path != "" {
			fmt.Printf("wrote %s (scale tier: %d functions, schema %s)\n", path, sr.Functions, r.Schema)
		}
		return nil
	}
	fmt.Printf("scale tier: %d functions, %d lines, %d callgraph SCCs (seed %d, edit %s)\n",
		sr.Functions, sr.Lines, sr.SCCs, sr.Seed, sr.EditedFunc)
	fmt.Printf("  cold: analysis %10.3fms  compile %10.3fms  sccs solved %5d  cached %5d\n",
		float64(sr.Cold.AnalysisNS)/1e6, float64(sr.Cold.CompileNS)/1e6,
		sr.Cold.SCCsSolved, sr.Cold.SCCsCached)
	fmt.Printf("  warm: analysis %10.3fms  compile %10.3fms  sccs solved %5d  cached %5d\n",
		float64(sr.Warm.AnalysisNS)/1e6, float64(sr.Warm.CompileNS)/1e6,
		sr.Warm.SCCsSolved, sr.Warm.SCCsCached)
	fmt.Printf("  warm re-analysis speedup: %.1fx; warm IL identical to uncached compile: %v\n",
		sr.Speedup, sr.Identical)
	return nil
}

// runCompare implements -compare: diff two reports and gate on the
// deterministic metrics. "old.json,new.json" names both sides; a
// single path is compared against the newest other BENCH_*.json in
// the current directory.
func runCompare(arg string, threshold float64) {
	var oldPath, newPath string
	var oldR, newR *bench.Report
	var err error
	if i := strings.IndexByte(arg, ','); i >= 0 {
		oldPath, newPath = arg[:i], arg[i+1:]
		if oldR, err = bench.LoadReport(oldPath); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(2)
		}
	} else {
		newPath = arg
		oldR, oldPath, err = bench.BaselineBefore(".", newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rpbench: no baseline to compare against:", err)
			os.Exit(2)
		}
	}
	if newR, err = bench.LoadReport(newPath); err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(2)
	}
	cr := bench.Compare(oldR, newR, threshold)
	cr.OldPath, cr.NewPath = oldPath, newPath
	fmt.Printf("comparing %s -> %s\n", oldPath, newPath)
	fmt.Print(cr.Format())
	if !cr.OK() {
		os.Exit(1)
	}
}

// runTrend implements -trend: print the whole BENCH_*.json history
// and gate on its two newest reports.
func runTrend(threshold float64) {
	t, err := bench.LoadTrend(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbench: no benchmark history:", err)
		os.Exit(2)
	}
	fmt.Print(t.Format())
	cr := t.Compare(threshold)
	if cr == nil {
		return
	}
	fmt.Printf("\nnewest pair: %s -> %s\n", cr.OldPath, cr.NewPath)
	fmt.Print(cr.Format())
	if !cr.OK() {
		os.Exit(1)
	}
}

func printTable(markdown bool, figure int, m bench.Metric, rows []bench.Row) {
	if !markdown {
		fmt.Printf("Figure %d: ", figure)
		fmt.Print(bench.FormatTable(m, rows))
		return
	}
	fmt.Printf("### Figure %d: %s\n\n", figure, m)
	fmt.Println("| Program | analysis | without | with | difference | % removed |")
	fmt.Println("|---|---|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %d | %d | %d | %.2f |\n",
			r.Program, r.Analysis, r.Without, r.With, r.Difference(), r.PercentRemoved())
	}
}

// runPointerStudy reproduces the §3.3 comparison: how much more the
// pointer-based promoter removes beyond scalar promotion.
func runPointerStudy(opts bench.Options, markdown bool) error {
	scalar, err := bench.RunFigures(opts)
	if err != nil {
		return err
	}
	withPtr := opts
	withPtr.PointerPromotion = true
	ptr, err := bench.RunFigures(withPtr)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println("### §3.3 study: pointer-based promotion over scalar promotion (points-to analysis)")
		fmt.Println()
		fmt.Println("| Program | metric | scalar promo | +pointer promo | extra removed |")
		fmt.Println("|---|---|---:|---:|---:|")
	} else {
		fmt.Println("§3.3 study: pointer-based promotion over scalar promotion (points-to analysis)")
		fmt.Printf("%-11s %-8s %14s %14s %14s\n", "Program", "metric", "scalar", "+pointer", "extra removed")
	}
	for _, metric := range []bench.Metric{bench.TotalOps, bench.Stores, bench.Loads} {
		ms := indexRows(scalar.Rows[metric])
		mp := indexRows(ptr.Rows[metric])
		for _, r := range scalar.Rows[metric] {
			if r.Analysis != "pointer" {
				continue
			}
			key := r.Program
			s := ms[key]
			p := mp[key]
			extra := s.With - p.With
			if markdown {
				fmt.Printf("| %s | %s | %d | %d | %d |\n", key, metric, s.With, p.With, extra)
			} else {
				fmt.Printf("%-11s %-8s %14d %14d %14d\n", key, metric, s.With, p.With, extra)
			}
		}
	}
	return nil
}

func indexRows(rows []bench.Row) map[string]bench.Row {
	out := map[string]bench.Row{}
	for _, r := range rows {
		if r.Analysis == "pointer" {
			out[r.Program] = r
		}
	}
	return out
}
