// Command rpbench regenerates the paper's evaluation tables over the
// packaged benchmark suite.
//
// Usage:
//
//	rpbench -list            print the Figure 4 program table
//	rpbench                  print Figures 5, 6, and 7, plus Figure 8
//	                         (this reproduction's weighted-cycles
//	                         extension)
//	rpbench -figure 6        print one figure (5=ops, 6=stores,
//	                         7=loads, 8=weighted cycles)
//	rpbench -parallel N      measure up to N programs concurrently
//	                         (0 = one per CPU); results are assembled
//	                         in suite order, so the tables are
//	                         identical to a serial run's
//	rpbench -pointerpromo    rerun the matrix with §3.3 pointer-based
//	                         promotion enabled and report the delta it
//	                         adds over scalar promotion (§3.3 study)
//	rpbench -programs a,b,c  restrict to named programs
//	-k N                     physical register count (default 32)
//	-engine flat|switch      interpreter engine (default flat; counts
//	                         are engine-independent, only wall time
//	                         changes)
//	-markdown                emit Markdown tables (for EXPERIMENTS.md)
//	rpbench -json            run the observed matrix and write the full
//	                         machine-readable report — dynamic counts
//	                         for all four configurations plus per-pass
//	                         wall time and IR deltas per program — to a
//	                         versioned BENCH_<timestamp>.json file
//	-out path                destination for -json ("-" = stdout)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regpromo/internal/bench"
	"regpromo/internal/interp"
)

func main() {
	list := flag.Bool("list", false, "print the Figure 4 program table")
	figure := flag.Int("figure", 0, "print only one figure: 5, 6, or 7")
	pointer := flag.Bool("pointerpromo", false, "measure §3.3 pointer-based promotion against scalar promotion")
	programs := flag.String("programs", "", "comma-separated program subset")
	k := flag.Int("k", 0, "physical register count (0 = default)")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	jsonOut := flag.Bool("json", false, "write the observed benchmark report as BENCH_<timestamp>.json")
	out := flag.String("out", "", "output path for -json (default BENCH_<timestamp>.json, \"-\" = stdout)")
	parallel := flag.Int("parallel", 1, "programs measured concurrently (0 = one per CPU, 1 = serial)")
	engineName := flag.String("engine", "flat", "interpreter engine: flat or switch")
	flag.Parse()

	if *list {
		fmt.Print(bench.FormatFigure4())
		return
	}

	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(2)
	}

	opts := bench.Options{K: *k, Parallel: *parallel, Engine: engine}
	if *parallel == 0 {
		opts.Parallel = bench.DefaultWorkers()
	}
	if *programs != "" {
		opts.Programs = strings.Split(*programs, ",")
	}

	if *jsonOut {
		opts.PointerPromotion = *pointer
		if err := runJSON(opts, *out); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}

	if *pointer {
		if err := runPointerStudy(opts, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
			os.Exit(1)
		}
		return
	}

	fr, err := bench.RunFigures(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
		os.Exit(1)
	}
	// Figures 5, 6, and 7 are the paper's; Figure 8 is this
	// reproduction's weighted-cycles extension (§5's latency remark,
	// quantified).
	metrics := map[int]bench.Metric{5: bench.TotalOps, 6: bench.Stores, 7: bench.Loads, 8: bench.WeightedCycles}
	if *figure != 0 {
		m, ok := metrics[*figure]
		if !ok {
			fmt.Fprintln(os.Stderr, "rpbench: -figure must be 5, 6, 7, or 8 (weighted cycles)")
			os.Exit(2)
		}
		printTable(*markdown, *figure, m, fr.Rows[m])
		return
	}
	for _, f := range []int{5, 6, 7, 8} {
		m := metrics[f]
		printTable(*markdown, f, m, fr.Rows[m])
		fmt.Println()
	}
}

// runJSON runs the observed measurement matrix and writes the
// versioned report. Timestamped filenames sort chronologically, so the
// newest file is the baseline bench.LatestBaseline picks up.
func runJSON(opts bench.Options, out string) error {
	r, err := bench.CollectReport(opts)
	if err != nil {
		return err
	}
	now := time.Now().UTC()
	r.Timestamp = now.Format(time.RFC3339)
	if out == "-" {
		return r.WriteJSON(os.Stdout)
	}
	if out == "" {
		out = "BENCH_" + now.Format("20060102T150405") + ".json"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d programs, Figures 5, 6, and 7 plus the Figure 8 extension, schema %s)\n",
		out, len(r.Programs), r.Schema)
	return nil
}

func printTable(markdown bool, figure int, m bench.Metric, rows []bench.Row) {
	if !markdown {
		fmt.Printf("Figure %d: ", figure)
		fmt.Print(bench.FormatTable(m, rows))
		return
	}
	fmt.Printf("### Figure %d: %s\n\n", figure, m)
	fmt.Println("| Program | analysis | without | with | difference | % removed |")
	fmt.Println("|---|---|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %d | %d | %d | %.2f |\n",
			r.Program, r.Analysis, r.Without, r.With, r.Difference(), r.PercentRemoved())
	}
}

// runPointerStudy reproduces the §3.3 comparison: how much more the
// pointer-based promoter removes beyond scalar promotion.
func runPointerStudy(opts bench.Options, markdown bool) error {
	scalar, err := bench.RunFigures(opts)
	if err != nil {
		return err
	}
	withPtr := opts
	withPtr.PointerPromotion = true
	ptr, err := bench.RunFigures(withPtr)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println("### §3.3 study: pointer-based promotion over scalar promotion (points-to analysis)")
		fmt.Println()
		fmt.Println("| Program | metric | scalar promo | +pointer promo | extra removed |")
		fmt.Println("|---|---|---:|---:|---:|")
	} else {
		fmt.Println("§3.3 study: pointer-based promotion over scalar promotion (points-to analysis)")
		fmt.Printf("%-11s %-8s %14s %14s %14s\n", "Program", "metric", "scalar", "+pointer", "extra removed")
	}
	for _, metric := range []bench.Metric{bench.TotalOps, bench.Stores, bench.Loads} {
		ms := indexRows(scalar.Rows[metric])
		mp := indexRows(ptr.Rows[metric])
		for _, r := range scalar.Rows[metric] {
			if r.Analysis != "pointer" {
				continue
			}
			key := r.Program
			s := ms[key]
			p := mp[key]
			extra := s.With - p.With
			if markdown {
				fmt.Printf("| %s | %s | %d | %d | %d |\n", key, metric, s.With, p.With, extra)
			} else {
				fmt.Printf("%-11s %-8s %14d %14d %14d\n", key, metric, s.With, p.With, extra)
			}
		}
	}
	return nil
}

func indexRows(rows []bench.Row) map[string]bench.Row {
	out := map[string]bench.Row{}
	for _, r := range rows {
		if r.Analysis == "pointer" {
			out[r.Program] = r
		}
	}
	return out
}
