module regpromo

go 1.22
